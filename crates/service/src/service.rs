//! The scheduler: bounded intake, stage-pipelined workers, deadlines, and
//! graceful shutdown.

use crate::job::{JobError, JobHandle, JobResult, JobShared, ProofTask, TaskOutput};
use crate::{JobOptions, Priority, ServiceConfig, SubmitError};
use gzkp_gpu_sim::{FaultInjector, FaultKind, TraceContext};
use gzkp_msm::PreprocessStore;
use gzkp_runtime::{FleetRuntime, FleetUtilization};
use gzkp_telemetry::{
    counters, Counter, Gauge, LatencyHistogram, MetricsRegistry, NoopSink, TelemetrySink, Trace,
    TraceRecorder,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One scheduled unit moving through the service.
struct Job {
    id: u64,
    seq: u64,
    task: Box<dyn ProofTask>,
    priority: Priority,
    key: u64,
    deadline: Option<Instant>,
    submitted: Instant,
    queue_wait: Duration,
    shared: Arc<JobShared>,
    recorder: Option<TraceRecorder>,
    /// Whether the job has reached a worker at least once (queue wait
    /// measured, `service`/`execute` spans opened).
    started: bool,
    /// Whether the `service`/`execute` spans are open (set once the job
    /// first reaches a worker; resolution must close them).
    spans_open: bool,
    /// Fleet mode: the device the job is currently bound to (engines
    /// rebuilt for it). `None` until first placement; a steal rebinds it.
    device: Option<usize>,
    /// Cross-device MSM: the non-primary devices the job additionally
    /// claimed (`device` holds the primary). Empty for single-device
    /// placements; released together with the primary.
    extra_devices: Vec<usize>,
    /// Verification votes cast for this job (each verify-before-return
    /// check of a produced proof is one vote).
    verify_votes: u32,
    /// Fault-draw index: advances on every injected fault and verify
    /// reject (never on dead-device hits), so the injected sequence per
    /// job is a pure function of the chaos seed.
    attempt: u32,
    /// Stage re-executions performed for this job.
    retries: u32,
    /// Injected faults this job absorbed.
    faults: u32,
    /// Verify-before-return rejections for this job.
    verify_rejects: u32,
    /// Retry backoff: the job is not schedulable before this instant.
    not_before: Option<Instant>,
    /// The device the job's last stage failed on; the next placement
    /// avoids it when any other device is available.
    avoid_device: Option<usize>,
}

impl Job {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    fn ready(&self, now: Instant) -> bool {
        self.not_before.is_none_or(|t| t <= now)
    }
}

struct Queue {
    /// Jobs awaiting their POLY stage.
    pending: Vec<Job>,
    /// Jobs with POLY done, awaiting their MSM stage.
    staged: Vec<Job>,
    /// Accepted jobs not yet resolved (queued + executing).
    open: usize,
    accepting: bool,
    /// Key of the most recently scheduled job (affinity preference).
    last_key: Option<u64>,
    seq: u64,
    next_id: u64,
}

/// Cached live-metrics handles, resolved once at service start so the
/// hot path never touches the registry's name table. All cells are
/// lock-free atomics shared with whoever else snapshots the registry.
struct ServiceMetrics {
    accepted: Counter,
    rejected: Counter,
    completed: Counter,
    /// Completions split by proof system (`system=groth16` /
    /// `system=plonk`), for mixed-backend dashboards.
    completed_groth16: Counter,
    completed_plonk: Counter,
    deadline_missed: Counter,
    cancelled: Counter,
    drained: Counter,
    failed: Counter,
    retries: Counter,
    faults_injected: Counter,
    verify_rejects: Counter,
    verify_votes: Counter,
    cpu_fallbacks: Counter,
    queue_depth: Gauge,
    queue_wait: LatencyHistogram,
    job_latency: LatencyHistogram,
    stage_poly: LatencyHistogram,
    stage_msm: LatencyHistogram,
}

impl ServiceMetrics {
    fn new(reg: &MetricsRegistry) -> Self {
        let stage = |label| reg.histogram_with(counters::STAGE_LATENCY_NS, "stage", label);
        ServiceMetrics {
            accepted: reg.counter(counters::SERVICE_ACCEPTED),
            rejected: reg.counter(counters::SERVICE_REJECTED),
            completed: reg.counter(counters::SERVICE_COMPLETED),
            completed_groth16: reg.counter_with(
                counters::SERVICE_COMPLETED_BY_SYSTEM,
                counters::LABEL_SYSTEM,
                counters::SYSTEM_GROTH16,
            ),
            completed_plonk: reg.counter_with(
                counters::SERVICE_COMPLETED_BY_SYSTEM,
                counters::LABEL_SYSTEM,
                counters::SYSTEM_PLONK,
            ),
            deadline_missed: reg.counter(counters::SERVICE_DEADLINE_MISSED),
            cancelled: reg.counter(counters::SERVICE_CANCELLED),
            drained: reg.counter(counters::SERVICE_DRAINED),
            failed: reg.counter(counters::SERVICE_FAILED),
            retries: reg.counter(counters::SERVICE_RETRIES),
            faults_injected: reg.counter(counters::FAULT_INJECTED),
            verify_rejects: reg.counter(counters::VERIFY_REJECTS),
            verify_votes: reg.counter(counters::VERIFY_VOTES),
            cpu_fallbacks: reg.counter(counters::SERVICE_CPU_FALLBACKS),
            queue_depth: reg.gauge(counters::SERVICE_QUEUE_DEPTH),
            queue_wait: reg.histogram(counters::SERVICE_QUEUE_WAIT_NS),
            job_latency: reg.histogram(counters::SERVICE_JOB_LATENCY_NS),
            stage_poly: stage(counters::SPAN_POLY),
            stage_msm: stage(counters::SPAN_MSM),
        }
    }
}

#[derive(Default)]
struct StatCells {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    deadline_missed: AtomicU64,
    cancelled: AtomicU64,
    drained: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    faults_injected: AtomicU64,
    verify_rejects: AtomicU64,
    verify_votes: AtomicU64,
    cpu_fallbacks: AtomicU64,
}

/// Snapshot of the service's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Submissions rejected with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Jobs that produced a proof.
    pub completed: u64,
    /// Jobs dropped at a deadline checkpoint.
    pub deadline_missed: u64,
    /// Jobs dropped by [`JobHandle::cancel`].
    pub cancelled: u64,
    /// Jobs returned as [`JobError::Drained`]: shutdown arrived while
    /// they were parked for a retry backoff.
    pub drained: u64,
    /// Jobs whose stage errored or panicked (including jobs that
    /// exhausted their retry budget).
    pub failed: u64,
    /// Stage re-executions performed recovering from faults.
    pub retries: u64,
    /// Faults the chaos injector fired (dead-device hits not included).
    pub faults_injected: u64,
    /// Proofs the verify-before-return guard rejected.
    pub verify_rejects: u64,
    /// Verification votes cast by the guard (one per produced proof it
    /// checked; a rejected proof triggers re-execution until a run's
    /// proof verifies or [`VERIFY_VOTE_RUNS`] runs have all been
    /// rejected).
    pub verify_votes: u64,
    /// Devices quarantined by the fleet's circuit breaker.
    pub quarantines: u64,
    /// Stage executions degraded to the host CPU path because no fleet
    /// device was available.
    pub cpu_fallbacks: u64,
}

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<Queue>,
    /// Signaled when schedulable work may exist (or on shutdown).
    work_cv: Condvar,
    /// Signaled when `open` drops to zero (drain/shutdown waiters).
    idle_cv: Condvar,
    stats: StatCells,
    store: Arc<PreprocessStore>,
    /// Fleet mode: per-device timelines and placement counters.
    fleet: Option<Arc<FleetRuntime>>,
    /// Chaos mode: the deterministic fault oracle rolled before every
    /// stage execution.
    injector: Option<Arc<FaultInjector>>,
    /// Live metrics handles, present iff [`ServiceConfig::metrics`] is.
    metrics: Option<ServiceMetrics>,
}

enum Stage {
    Poly,
    Msm,
}

/// Error-correcting re-execution: a proof the verify-before-return guard
/// rejects is re-proven (from POLY, with fresh placement) until one run's
/// proof verifies; only when this many runs have *all* been rejected does
/// the job fail. Each verification is counted in `verify.votes`.
pub const VERIFY_VOTE_RUNS: u32 = 3;

/// Publishes the live queue depth. Queue lock held by the caller, so the
/// gauge is always a value the queue actually had.
fn gauge_queue_depth(inner: &Inner, q: &Queue) {
    if let Some(m) = &inner.metrics {
        m.queue_depth.set((q.pending.len() + q.staged.len()) as f64);
    }
}

/// The running service: worker threads plus the shared state they
/// schedule from. See the crate docs for the architecture.
pub struct ProvingService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ProvingService {
    /// Starts the worker pool (at least one thread) and returns the
    /// service. With a non-empty [`ServiceConfig::devices`] fleet, one
    /// worker is pinned per device and `cfg.workers` is ignored.
    pub fn start(cfg: ServiceConfig) -> Self {
        let fleet = (!cfg.devices.is_empty()).then(|| {
            Arc::new(FleetRuntime::with_health_policy(
                cfg.devices.clone(),
                cfg.health,
            ))
        });
        let injector = cfg
            .chaos
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let worker_count = fleet.as_ref().map_or(cfg.workers.max(1), |f| f.len());
        let metrics = cfg.metrics.as_deref().map(|reg| {
            if let Some(f) = &fleet {
                f.attach_metrics(reg);
            }
            ServiceMetrics::new(reg)
        });
        let inner = Arc::new(Inner {
            store: Arc::new(PreprocessStore::new(cfg.prep_cache_bytes)),
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                staged: Vec::new(),
                open: 0,
                accepting: true,
                last_key: None,
                seq: 0,
                next_id: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            stats: StatCells::default(),
            fleet,
            injector,
            metrics,
            cfg,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("gzkp-service-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn service worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// The device fleet, when the service runs in fleet mode.
    pub fn fleet(&self) -> Option<&Arc<FleetRuntime>> {
        self.inner.fleet.as_ref()
    }

    /// The chaos fault injector, when [`ServiceConfig::chaos`] is set —
    /// its event log is the reproducible fault trace of the run.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.injector.as_ref()
    }

    /// Per-device utilization snapshot (fleet mode only).
    pub fn fleet_utilization(&self) -> Option<FleetUtilization> {
        self.inner.fleet.as_ref().map(|f| f.utilization())
    }

    /// The fleet's `runtime→dev{n}→{h2d,kernel,d2h}` telemetry trace
    /// (fleet mode only).
    pub fn fleet_trace(&self) -> Option<Trace> {
        self.inner.fleet.as_ref().map(|f| f.trace())
    }

    /// The shared checkpoint-table store; wire it into each job's MSM
    /// engines (e.g. [`crate::Groth16Task::new`]) so proving keys are
    /// preprocessed once service-wide.
    pub fn store(&self) -> Arc<PreprocessStore> {
        self.inner.store.clone()
    }

    /// Submits a job, applying backpressure: if the queue holds
    /// [`ServiceConfig::queue_capacity`] jobs the submission is rejected
    /// immediately rather than buffered.
    pub fn submit(
        &self,
        task: Box<dyn ProofTask>,
        opts: JobOptions,
    ) -> Result<JobHandle, SubmitError> {
        let key = task.key_id();
        let mut q = self.inner.queue.lock().unwrap();
        if !q.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        if q.pending.len() + q.staged.len() >= self.inner.cfg.queue_capacity {
            self.inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.inner.metrics {
                m.rejected.inc();
            }
            return Err(SubmitError::QueueFull {
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let now = Instant::now();
        let id = q.next_id;
        q.next_id += 1;
        let seq = q.seq;
        q.seq += 1;
        let shared = Arc::new(JobShared::new());
        q.pending.push(Job {
            id,
            seq,
            task,
            priority: opts.priority,
            key,
            deadline: opts
                .deadline
                .or(self.inner.cfg.default_deadline)
                .map(|d| now + d),
            submitted: now,
            queue_wait: Duration::ZERO,
            shared: shared.clone(),
            recorder: opts
                .trace
                .then(|| TraceRecorder::new(counters::SPAN_SERVICE)),
            started: false,
            spans_open: false,
            device: None,
            extra_devices: Vec::new(),
            verify_votes: 0,
            attempt: 0,
            retries: 0,
            faults: 0,
            verify_rejects: 0,
            not_before: None,
            avoid_device: None,
        });
        q.open += 1;
        self.inner.stats.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.inner.metrics {
            m.accepted.inc();
        }
        gauge_queue_depth(&self.inner, &q);
        drop(q);
        self.inner.work_cv.notify_one();
        Ok(JobHandle { id, shared })
    }

    /// Blocks until every accepted job has resolved. Intake stays open;
    /// jobs submitted concurrently extend the wait.
    pub fn drain(&self) {
        let mut q = self.inner.queue.lock().unwrap();
        while q.open > 0 {
            q = self.inner.idle_cv.wait(q).unwrap();
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        ServiceStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            deadline_missed: s.deadline_missed.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            drained: s.drained.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            faults_injected: s.faults_injected.load(Ordering::Relaxed),
            verify_rejects: s.verify_rejects.load(Ordering::Relaxed),
            verify_votes: s.verify_votes.load(Ordering::Relaxed),
            quarantines: self
                .inner
                .fleet
                .as_ref()
                .map_or(0, |f| f.quarantine_events()),
            cpu_fallbacks: s.cpu_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stops intake, lets every accepted job run to
    /// resolution (including deadline/cancel drops), and joins the
    /// workers.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.inner.queue.lock().unwrap().accepting = false;
        self.inner.work_cv.notify_all();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
    }
}

impl Drop for ProvingService {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner, wid: usize) {
    // Fleet mode pins each worker to one device; its queue picks prefer
    // jobs already bound there (data resident) and fall back to stealing
    // jobs bound to other devices when its own queue runs dry.
    let own = inner.fleet.as_ref().map(|f| wid % f.len());
    let staged_cap = inner
        .fleet
        .as_ref()
        .map_or(inner.cfg.workers.max(1), |f| f.len());
    loop {
        let picked = {
            let mut guard = inner.queue.lock().unwrap();
            loop {
                let q = &mut *guard;
                sweep(inner, q);
                if let Some(job) = pick(&mut q.staged, q.last_key, inner.cfg.key_affinity, own) {
                    q.last_key = Some(job.key);
                    break Some((job, Stage::Msm));
                }
                // Cap the staged backlog at the worker count: POLY output
                // is only useful once an MSM slot can consume it, and the
                // cap bounds the artifacts held alive.
                if q.staged.len() < staged_cap {
                    if let Some(job) = pick(&mut q.pending, q.last_key, inner.cfg.key_affinity, own)
                    {
                        q.last_key = Some(job.key);
                        break Some((job, Stage::Poly));
                    }
                }
                if !q.accepting && q.open == 0 {
                    break None;
                }
                // Jobs parked for a retry backoff bound the wait: wake
                // when the earliest becomes schedulable again.
                let next_ready = q
                    .pending
                    .iter()
                    .chain(q.staged.iter())
                    .filter_map(|j| j.not_before)
                    .min();
                guard = match next_ready {
                    Some(t) => {
                        let timeout = t.saturating_duration_since(Instant::now());
                        inner.work_cv.wait_timeout(guard, timeout).unwrap().0
                    }
                    None => inner.work_cv.wait(guard).unwrap(),
                };
            }
        };
        let Some((mut job, stage)) = picked else {
            return;
        };
        if let (Some(fleet), Some(own)) = (inner.fleet.as_ref(), own) {
            let cross = matches!(stage, Stage::Msm)
                && inner.cfg.cross_device
                && fleet.len() > 1
                && place_job_cross(fleet, &mut job);
            if !cross {
                place_job(inner, fleet, &mut job, own);
            }
        }
        match stage {
            Stage::Poly => run_poly(inner, job),
            Stage::Msm => run_msm(inner, job),
        }
    }
}

/// Deadline-aware cross-device placement of a picked MSM stage: claims
/// the device set [`FleetRuntime::place_for_deadline`] grants for the
/// task's modeled remaining cost and binds the task's MSM engines across
/// it ([`ProofTask::bind_fleet`]). Returns `false` — leaving the job for
/// ordinary single-device placement — when the grant is a single device
/// or the task cannot split its MSMs.
fn place_job_cross(fleet: &Arc<FleetRuntime>, job: &mut Job) -> bool {
    let remaining = job.task.msm_cost_estimate_ns();
    if remaining <= 0.0 {
        return false;
    }
    let slack = job
        .deadline
        .map(|d| d.saturating_duration_since(Instant::now()).as_nanos() as f64);
    let devices = fleet.place_for_deadline(remaining, slack, fleet.len());
    if devices.len() < 2 || !job.task.bind_fleet(fleet, &devices, job.id) {
        for d in devices {
            fleet.complete(d);
        }
        return false;
    }
    if let Some(prev) = job.device.take() {
        fleet.complete(prev);
    }
    job.device = Some(devices[0]);
    job.extra_devices = devices[1..].to_vec();
    true
}

/// Health-aware placement of a picked job: the worker's own device when
/// it is available (and not the device the job just failed on), else the
/// least-loaded available device, else — whole fleet quarantined — the
/// host CPU path, which cannot be quarantined and guarantees progress.
fn place_job(inner: &Inner, fleet: &FleetRuntime, job: &mut Job, own: usize) {
    let own_ok = fleet.available(own) && job.avoid_device != Some(own);
    let target = if own_ok {
        Some(own)
    } else {
        fleet.place_available(job.avoid_device)
    };
    match target {
        Some(dev) => bind_to_device(fleet, job, dev),
        None => {
            if let Some(prev) = job.device.take() {
                fleet.complete(prev);
            }
            job.task.bind_device(&gzkp_gpu_sim::cpu_xeon());
            inner.stats.cpu_fallbacks.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &inner.metrics {
                m.cpu_fallbacks.inc();
            }
        }
    }
}

/// Binds a picked job to the worker's device: counts the steal when the
/// job was bound elsewhere, releases the old placement, and rebuilds the
/// task's engines for the new device.
fn bind_to_device(fleet: &FleetRuntime, job: &mut Job, own: usize) {
    if job.device == Some(own) {
        return;
    }
    if let Some(prev) = job.device {
        fleet.complete(prev);
        fleet.record_steal(own);
    }
    job.task.bind_device(fleet.config(own));
    job.device = Some(own);
    fleet.assign(own);
}

/// Resolves every queued job whose deadline passed or that was cancelled,
/// without running it. Called with the queue lock held on each dequeue.
fn sweep(inner: &Inner, q: &mut Queue) {
    let now = Instant::now();
    for pending in [true, false] {
        let list = if pending {
            std::mem::take(&mut q.pending)
        } else {
            std::mem::take(&mut q.staged)
        };
        let mut keep = Vec::with_capacity(list.len());
        for job in list {
            if job.shared.is_cancelled() {
                resolve_locked(inner, q, job, Err(JobError::Cancelled));
            } else if job.expired(now) {
                resolve_locked(inner, q, job, Err(JobError::DeadlineMissed));
            } else if !q.accepting && !job.ready(now) {
                // Shutdown must not wait out retry backoffs (a job parked
                // behind a quarantined device could hold the drain for a
                // whole probation window): return it explicitly.
                resolve_locked(inner, q, job, Err(JobError::Drained));
            } else {
                keep.push(job);
            }
        }
        if pending {
            q.pending = keep;
        } else {
            q.staged = keep;
        }
    }
}

/// Takes the best job: strongest priority first, then — in fleet mode —
/// jobs local to (or not yet bound to) the worker's device before steals
/// from other devices' queues, then (optionally) jobs sharing the last
/// scheduled proving key, then FIFO order.
fn pick(
    list: &mut Vec<Job>,
    last_key: Option<u64>,
    affinity: bool,
    own: Option<usize>,
) -> Option<Job> {
    let now = Instant::now();
    let (idx, _) = list
        .iter()
        .enumerate()
        .filter(|(_, j)| j.ready(now))
        .min_by_key(|(_, j)| {
            let cold_key = !(affinity && Some(j.key) == last_key);
            let remote = own.is_some() && j.device.is_some() && j.device != own;
            (j.priority, remote, cold_key, j.seq)
        })?;
    Some(list.remove(idx))
}

/// The job's propagated trace context for one stage execution:
/// job id → stage → current device binding.
fn stage_ctx(job: &Job, stage: &'static str) -> TraceContext {
    TraceContext::new(job.id, stage).on_device(job.device)
}

/// Rolls the chaos oracle for one stage execution. Returns the injected
/// fault, distinguishing dead-device hits (placement events that neither
/// consume a draw nor advance the job's attempt index) from drawn faults.
fn roll_fault(
    inner: &Inner,
    job: &mut Job,
    stage: &'static str,
    corruptible: bool,
) -> Option<FaultKind> {
    let inj = inner.injector.as_deref()?;
    let dead_hit = job.device.is_some_and(|d| inj.is_dead(d));
    let kind = inj.roll_ctx(&stage_ctx(job, stage), job.attempt, corruptible)?;
    if !dead_hit {
        job.attempt += 1;
        job.faults += 1;
        inner.stats.faults_injected.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &inner.metrics {
            m.faults_injected.inc();
        }
    }
    Some(kind)
}

/// Handles a recoverable stage failure (injected fault or verify
/// reject): updates device health, parks the job for an exponential
/// backoff, and requeues it — `to_staged` keeps the POLY artifacts (the
/// fault hit before the MSM stage consumed them), otherwise the job
/// restarts from POLY. Jobs that exhausted the retry budget resolve as
/// [`JobError::Failed`].
fn retry_or_fail(inner: &Inner, mut job: Job, reason: &str, hard: bool, to_staged: bool) {
    if let (Some(fleet), Some(dev)) = (inner.fleet.as_deref(), job.device.take()) {
        fleet.complete(dev);
        fleet.record_failure(dev, hard);
        job.avoid_device = Some(dev);
        for d in job.extra_devices.drain(..) {
            fleet.complete(d);
        }
    }
    if job.attempt > inner.cfg.retry.max_retries {
        return resolve(
            inner,
            job,
            Err(JobError::Failed(format!(
                "{reason} (retry budget of {} exhausted)",
                inner.cfg.retry.max_retries
            ))),
        );
    }
    job.retries += 1;
    inner.stats.retries.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = &inner.metrics {
        m.retries.inc();
    }
    if let Some(rec) = &job.recorder {
        rec.span_start(counters::SPAN_RETRY);
        rec.span_end(counters::SPAN_RETRY);
    }
    let policy = &inner.cfg.retry;
    let exp = job.retries.saturating_sub(1).min(16);
    let delay = policy
        .backoff
        .saturating_mul(1u32 << exp)
        .min(policy.max_backoff);
    job.not_before = Some(Instant::now() + delay);
    let mut q = inner.queue.lock().unwrap();
    if to_staged {
        q.staged.push(job);
    } else {
        q.pending.push(job);
    }
    gauge_queue_depth(inner, &q);
    drop(q);
    inner.work_cv.notify_one();
}

fn run_poly(inner: &Inner, mut job: Job) {
    if !job.started {
        // First time on a worker: the queue wait ends here. Retries
        // re-enter without reopening the service spans.
        job.started = true;
        job.queue_wait = job.submitted.elapsed();
        if let Some(m) = &inner.metrics {
            m.queue_wait.record(job.queue_wait.as_nanos() as u64);
        }
        if let Some(rec) = &job.recorder {
            rec.span_start(counters::SPAN_SERVICE);
            rec.span_start(counters::SPAN_QUEUE_WAIT);
            rec.span_time(job.queue_wait.as_nanos() as f64);
            rec.span_end(counters::SPAN_QUEUE_WAIT);
            rec.span_start(counters::SPAN_EXECUTE);
            job.spans_open = true;
        }
    }
    if job.shared.is_cancelled() {
        return resolve(inner, job, Err(JobError::Cancelled));
    }
    if job.expired(Instant::now()) {
        return resolve(inner, job, Err(JobError::DeadlineMissed));
    }
    if let Some(kind) = roll_fault(inner, &mut job, counters::SPAN_POLY, false) {
        let hard = kind == FaultKind::DeviceHang;
        return retry_or_fail(inner, job, &format!("poly {kind}"), hard, false);
    }
    let stage_start = Instant::now();
    let outcome = {
        let task = &mut job.task;
        let sink: &dyn TelemetrySink = match &job.recorder {
            Some(rec) => rec,
            None => &NoopSink,
        };
        catch_unwind(AssertUnwindSafe(|| task.poly(sink)))
    };
    if let Some(m) = &inner.metrics {
        m.stage_poly.record(stage_start.elapsed().as_nanos() as u64);
    }
    match outcome {
        Ok(Ok(())) => {
            if let (Some(fleet), Some(dev)) = (inner.fleet.as_deref(), job.device) {
                let p = job.task.poly_profile();
                fleet.record_stage_ctx(
                    &stage_ctx(&job, counters::SPAN_POLY),
                    p.h2d_bytes,
                    p.kernel_ns,
                    p.d2h_bytes,
                );
                fleet.record_success(dev);
            }
            let mut q = inner.queue.lock().unwrap();
            q.staged.push(job);
            drop(q);
            inner.work_cv.notify_one();
        }
        Ok(Err(msg)) => resolve(inner, job, Err(JobError::Failed(msg))),
        Err(panic) => resolve(inner, job, Err(JobError::Failed(panic_message(&*panic)))),
    }
}

fn run_msm(inner: &Inner, mut job: Job) {
    if job.shared.is_cancelled() {
        return resolve(inner, job, Err(JobError::Cancelled));
    }
    if job.expired(Instant::now()) {
        return resolve(inner, job, Err(JobError::DeadlineMissed));
    }
    // The MSM stage is the corruptible one: its output is the serialized
    // proof, which the verify-before-return guard can actually check.
    let corruption = match roll_fault(inner, &mut job, counters::SPAN_MSM, true) {
        Some(FaultKind::SilentCorruption) => true,
        Some(kind) => {
            let hard = kind == FaultKind::DeviceHang;
            // The fault hit before the stage consumed the POLY artifacts:
            // requeue to staged so only the MSM re-runs.
            return retry_or_fail(inner, job, &format!("msm {kind}"), hard, true);
        }
        None => false,
    };
    let stage_start = Instant::now();
    let outcome = {
        let task = &mut job.task;
        let sink: &dyn TelemetrySink = match &job.recorder {
            Some(rec) => rec,
            None => &NoopSink,
        };
        catch_unwind(AssertUnwindSafe(|| task.msm(sink)))
    };
    if let Some(m) = &inner.metrics {
        m.stage_msm.record(stage_start.elapsed().as_nanos() as u64);
    }
    match outcome {
        Ok(Ok(mut output)) => {
            if corruption {
                // A silently flipped limb: the stage "succeeded" and
                // nothing downstream notices without verification.
                let mid = output.proof.len() / 2;
                if let Some(byte) = output.proof.get_mut(mid) {
                    *byte ^= 0x40;
                }
            }
            // Cross-device MSMs record their own per-device/P2P schedule
            // directly onto the fleet timelines while the stage runs;
            // re-recording the aggregate profile here would double-count.
            if job.extra_devices.is_empty() {
                if let (Some(fleet), Some(dev)) = (inner.fleet.as_deref(), job.device) {
                    let p = job.task.msm_profile(&output);
                    fleet.record_stage_ctx(
                        &stage_ctx(&job, counters::SPAN_MSM),
                        p.h2d_bytes,
                        p.kernel_ns,
                        p.d2h_bytes,
                    );
                    if p.shards > 0 {
                        fleet.record_shards(dev, p.shards);
                    }
                }
            }
            let verdict = job.task.verify_output(&output);
            if verdict.is_some() {
                // Every verification of a produced proof is one vote.
                job.verify_votes += 1;
                inner.stats.verify_votes.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &inner.metrics {
                    m.verify_votes.inc();
                }
            }
            if verdict == Some(false) {
                job.verify_rejects += 1;
                inner.stats.verify_rejects.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &inner.metrics {
                    m.verify_rejects.inc();
                }
                if !corruption {
                    // Genuine (non-injected) corruption still advances the
                    // fault-draw index; injected corruption already did at
                    // roll time.
                    job.attempt += 1;
                }
                if job.verify_rejects >= VERIFY_VOTE_RUNS {
                    if let (Some(fleet), Some(dev)) = (inner.fleet.as_deref(), job.device.take()) {
                        fleet.complete(dev);
                        fleet.record_failure(dev, false);
                        for d in job.extra_devices.drain(..) {
                            fleet.complete(d);
                        }
                    }
                    return resolve(
                        inner,
                        job,
                        Err(JobError::Failed(format!(
                            "proof failed verification in {VERIFY_VOTE_RUNS}-run vote"
                        ))),
                    );
                }
                // The artifacts were consumed producing the bad proof:
                // a full re-execution from POLY casts the next vote.
                return retry_or_fail(inner, job, "verify reject", false, false);
            }
            if let (Some(fleet), Some(dev)) = (inner.fleet.as_deref(), job.device) {
                fleet.record_success(dev);
            }
            resolve(inner, job, Ok(output));
        }
        Ok(Err(msg)) => resolve(inner, job, Err(JobError::Failed(msg))),
        Err(panic) => resolve(inner, job, Err(JobError::Failed(panic_message(&*panic)))),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("stage panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("stage panicked: {s}")
    } else {
        "stage panicked".to_string()
    }
}

fn resolve(inner: &Inner, job: Job, outcome: Result<TaskOutput, JobError>) {
    let mut q = inner.queue.lock().unwrap();
    resolve_locked(inner, &mut q, job, outcome);
}

/// Finalizes a job: closes its trace, bumps the stats, publishes the
/// result, and releases its `open` slot. Queue lock held.
fn resolve_locked(
    inner: &Inner,
    q: &mut Queue,
    mut job: Job,
    outcome: Result<TaskOutput, JobError>,
) {
    let stat = match &outcome {
        Ok(_) => &inner.stats.completed,
        Err(JobError::DeadlineMissed) => &inner.stats.deadline_missed,
        Err(JobError::Cancelled) => &inner.stats.cancelled,
        Err(JobError::Drained) => &inner.stats.drained,
        Err(JobError::Failed(_)) => &inner.stats.failed,
    };
    stat.fetch_add(1, Ordering::Relaxed);
    if let Some(m) = &inner.metrics {
        let counter = match &outcome {
            Ok(_) => &m.completed,
            Err(JobError::DeadlineMissed) => &m.deadline_missed,
            Err(JobError::Cancelled) => &m.cancelled,
            Err(JobError::Drained) => &m.drained,
            Err(JobError::Failed(_)) => &m.failed,
        };
        counter.inc();
        if outcome.is_ok() {
            let by_system = match job.task.system() {
                counters::SYSTEM_PLONK => &m.completed_plonk,
                _ => &m.completed_groth16,
            };
            by_system.inc();
        }
        m.job_latency
            .record(job.submitted.elapsed().as_nanos() as u64);
        m.queue_depth.set((q.pending.len() + q.staged.len()) as f64);
    }

    if let (Some(fleet), Some(dev)) = (inner.fleet.as_deref(), job.device) {
        fleet.complete(dev);
        for &d in &job.extra_devices {
            fleet.complete(d);
        }
    }

    let trace = job.recorder.take().map(|rec| {
        if job.spans_open {
            rec.span_end(counters::SPAN_EXECUTE);
            rec.span_end(counters::SPAN_SERVICE);
        }
        rec.counter(counters::SERVICE_ACCEPTED, 1.0);
        rec.counter(
            counters::SERVICE_QUEUE_WAIT_NS,
            job.queue_wait.as_nanos() as f64,
        );
        // Recovery counters only when work actually happened, so
        // fault-free traces stay identical to pre-chaos ones (and the
        // strict `zkprof diff` gate sees a clean baseline).
        if job.faults > 0 {
            rec.counter(counters::FAULT_INJECTED, f64::from(job.faults));
        }
        if job.retries > 0 {
            rec.counter(counters::SERVICE_RETRIES, f64::from(job.retries));
        }
        if job.verify_rejects > 0 {
            rec.counter(counters::VERIFY_REJECTS, f64::from(job.verify_rejects));
            // Votes only when voting engaged (a reject happened), so
            // clean verified traces stay byte-identical.
            rec.counter(counters::VERIFY_VOTES, f64::from(job.verify_votes));
        }
        let outcome_counter = match &outcome {
            Ok(_) => Some(counters::SERVICE_COMPLETED),
            Err(JobError::DeadlineMissed) => Some(counters::SERVICE_DEADLINE_MISSED),
            Err(JobError::Cancelled) => Some(counters::SERVICE_CANCELLED),
            Err(JobError::Drained) => None,
            Err(JobError::Failed(_)) => None,
        };
        if let Some(name) = outcome_counter {
            rec.counter(name, 1.0);
        }
        rec.finish()
    });

    job.shared.resolve(JobResult {
        id: job.id,
        outcome,
        queue_wait: job.queue_wait,
        latency: job.submitted.elapsed(),
        trace,
    });
    q.open -= 1;
    if q.open == 0 {
        inner.idle_cv.notify_all();
        // Exiting workers wait on work_cv for the open == 0 condition.
        inner.work_cv.notify_all();
    }
}
