//! Checkpointing proof tasks: a [`ProofTask`] variant that persists a
//! [`ProofCheckpoint`] after the POLY stage and after *every* MSM step,
//! and honors a cooperative interrupt flag between steps.
//!
//! This is the host-migration building block of the cluster layer: when a
//! simulated host dies mid-proof, the job's latest checkpoint bytes are
//! still in its [`CheckpointSlot`] (shared memory standing in for a
//! replicated checkpoint store), so the cluster scheduler rebuilds the
//! task on a surviving host with [`CheckpointingGroth16Task::resume`] and
//! the proof comes out byte-identical to an uninterrupted run — the
//! blinding RNG seed rides inside the checkpoint.

use crate::job::{ProofTask, StageProfile, TaskOutput};
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{CoordField, CurveParams};
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_groth16::checkpoint::ProofCheckpoint;
use gzkp_groth16::prove::{prove_poly, ProverEngines};
use gzkp_groth16::r1cs::ConstraintSystem;
use gzkp_groth16::{proof_to_bytes, verify_proof_bytes, ProvingKey, VerifyingKey};
use gzkp_msm::{GzkpMsm, MsmEngine, PreprocessStore};
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_telemetry::TelemetrySink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::TypeId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Shared cell holding a job's latest serialized checkpoint. The cluster
/// keeps one per job; the task overwrites it at every step boundary and
/// clears it when the proof completes.
pub type CheckpointSlot = Arc<Mutex<Option<Vec<u8>>>>;

/// Stores `bytes` into `slot`, surviving a poisoned lock (a worker that
/// panicked mid-store left consistent `Option` state either way).
fn store_slot(slot: &CheckpointSlot, bytes: Option<Vec<u8>>) {
    *slot.lock().unwrap_or_else(PoisonError::into_inner) = bytes;
}

/// A [`crate::Groth16Task`] twin that checkpoints after POLY and after
/// each of the five MSM steps, and fails fast (persisting first) when its
/// interrupt flag rises — the cluster sets that flag when it kills the
/// host the task is running on.
pub struct CheckpointingGroth16Task<P: PairingConfig> {
    cs: Arc<ConstraintSystem<P::Fr>>,
    pk: Arc<ProvingKey<P>>,
    vk: Option<Arc<VerifyingKey<P>>>,
    ntt: GzkpNtt,
    msm_g1: GzkpMsm,
    msm_g2: GzkpMsm,
    seed: u64,
    ckpt: Option<ProofCheckpoint<P>>,
    slot: CheckpointSlot,
    interrupt: Arc<AtomicBool>,
    msm_h2d_bytes: u64,
}

impl<P: PairingConfig> CheckpointingGroth16Task<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
{
    /// Builds a fresh task (no prior checkpoint). `slot` receives the
    /// serialized checkpoint at every stage boundary; `interrupt` aborts
    /// the task between MSM steps when set.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cs: Arc<ConstraintSystem<P::Fr>>,
        pk: Arc<ProvingKey<P>>,
        device: DeviceConfig,
        store: Option<Arc<PreprocessStore>>,
        seed: u64,
        slot: CheckpointSlot,
        interrupt: Arc<AtomicBool>,
    ) -> Self {
        let mut msm_g1 = GzkpMsm::new(device.clone());
        let mut msm_g2 = GzkpMsm::new(device.clone());
        if let Some(store) = store {
            msm_g1 = msm_g1.with_store(store.clone());
            msm_g2 = msm_g2.with_store(store);
        }
        Self {
            cs,
            pk,
            vk: None,
            ntt: GzkpNtt::auto::<P::Fr>(device),
            msm_g1,
            msm_g2,
            seed,
            ckpt: None,
            slot,
            interrupt,
            msm_h2d_bytes: 0,
        }
    }

    /// Rebuilds a task from checkpoint `bytes` taken on another host. The
    /// POLY stage becomes a no-op and the MSM stage picks up at the first
    /// incomplete step; the blinding seed comes from the checkpoint, so
    /// the finished proof matches the uninterrupted run byte for byte.
    ///
    /// # Errors
    ///
    /// Fails when `bytes` is not a valid checkpoint for curve `P`.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        cs: Arc<ConstraintSystem<P::Fr>>,
        pk: Arc<ProvingKey<P>>,
        device: DeviceConfig,
        store: Option<Arc<PreprocessStore>>,
        bytes: &[u8],
        slot: CheckpointSlot,
        interrupt: Arc<AtomicBool>,
    ) -> Result<Self, String> {
        let ckpt = ProofCheckpoint::<P>::from_bytes(bytes)?;
        let seed = ckpt.seed;
        let mut task = Self::new(cs, pk, device, store, seed, slot, interrupt);
        task.msm_h2d_bytes = ckpt.scalar_bytes();
        task.ckpt = Some(ckpt);
        Ok(task)
    }

    /// Enables verify-before-return against `vk`, as on
    /// [`crate::Groth16Task::with_verifying_key`].
    pub fn with_verifying_key(mut self, vk: Arc<VerifyingKey<P>>) -> Self {
        self.vk = Some(vk);
        self
    }

    /// Number of MSM steps already completed (from a restored
    /// checkpoint, or from progress made this run).
    pub fn steps_done(&self) -> usize {
        self.ckpt.as_ref().map_or(0, |c| c.steps_done())
    }
}

impl<P: PairingConfig> ProofTask for CheckpointingGroth16Task<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
    <P::Fq12C as gzkp_ff::ext::Fp12Config>::Fp6C: gzkp_ff::ext::Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: gzkp_ff::ext::Fp2Config,
{
    fn key_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        TypeId::of::<P>().hash(&mut h);
        (Arc::as_ptr(&self.pk) as usize).hash(&mut h);
        h.finish()
    }

    fn poly(&mut self, sink: &dyn TelemetrySink) -> Result<(), String> {
        if self.ckpt.is_some() {
            // Resumed past POLY already; nothing to recompute.
            return Ok(());
        }
        if self.interrupt.load(Ordering::Relaxed) {
            return Err("interrupted before poly stage".to_string());
        }
        let artifacts = prove_poly::<P>(&self.cs, &self.pk, &self.ntt, sink)
            .map_err(|e| format!("poly stage failed: {e:?}"))?;
        self.msm_h2d_bytes = artifacts.scalar_bytes();
        let ckpt = ProofCheckpoint::from_poly(self.seed, artifacts);
        store_slot(&self.slot, Some(ckpt.to_bytes()));
        self.ckpt = Some(ckpt);
        Ok(())
    }

    fn msm(&mut self, sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        let mut ckpt = self
            .ckpt
            .take()
            .ok_or_else(|| "msm stage scheduled before poly stage".to_string())?;
        let engines = ProverEngines::<P> {
            ntt: &self.ntt,
            msm_g1: &self.msm_g1 as &dyn MsmEngine<P::G1>,
            msm_g2: &self.msm_g2 as &dyn MsmEngine<P::G2>,
        };
        while let Some(step) = ckpt.next_step() {
            if self.interrupt.load(Ordering::Relaxed) {
                // Persist progress and put the checkpoint back so a
                // retry on this task (rather than a cross-host resume)
                // also continues instead of restarting.
                store_slot(&self.slot, Some(ckpt.to_bytes()));
                let done = ckpt.steps_done();
                self.ckpt = Some(ckpt);
                return Err(format!(
                    "host killed mid-proof: interrupted before msm step {step} ({done}/5 done)"
                ));
            }
            ckpt.run_step(&self.pk, &engines, step, sink)?;
            store_slot(&self.slot, Some(ckpt.to_bytes()));
        }
        let mut rng = StdRng::seed_from_u64(ckpt.seed);
        let (proof, report) = ckpt.finish(&self.pk, &mut rng)?;
        store_slot(&self.slot, None);
        Ok(TaskOutput {
            proof: proof_to_bytes(&proof),
            report: Some(report),
        })
    }

    fn bind_device(&mut self, device: &DeviceConfig) {
        self.ntt = self.ntt.rebind::<P::Fr>(device.clone());
        self.msm_g1.device = device.clone();
        self.msm_g2.device = device.clone();
    }

    fn msm_cost_estimate_ns(&self) -> f64 {
        let g1 = |n| MsmEngine::<P::G1>::plan_dense(&self.msm_g1, n).total_ns();
        g1(self.pk.a_query.len())
            + g1(self.pk.b_g1_query.len())
            + g1(self.pk.h_query.len())
            + g1(self.pk.l_query.len())
            + MsmEngine::<P::G2>::plan_dense(&self.msm_g2, self.pk.b_g2_query.len()).total_ns()
    }

    fn poly_profile(&self) -> StageProfile {
        use gzkp_ff::PrimeField;
        let fr_bytes = (P::Fr::NUM_LIMBS * 8) as u64;
        StageProfile {
            h2d_bytes: self.cs.num_variables() as u64 * fr_bytes,
            kernel_ns: self
                .ckpt
                .as_ref()
                .map_or(0.0, |c| c.poly_report().total_ns()),
            d2h_bytes: self.pk.h_query.len() as u64 * fr_bytes,
            shards: 0,
        }
    }

    fn msm_profile(&self, output: &TaskOutput) -> StageProfile {
        StageProfile {
            h2d_bytes: self.msm_h2d_bytes,
            kernel_ns: output.report.as_ref().map_or(0.0, |r| r.msm.total_ns()),
            d2h_bytes: output.proof.len() as u64,
            shards: 0,
        }
    }

    fn verify_output(&self, output: &TaskOutput) -> Option<bool> {
        self.vk
            .as_ref()
            .map(|vk| verify_proof_bytes::<P>(vk, &output.proof, &self.cs.input_assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_gpu_sim::v100;
    use gzkp_groth16::prove::prove;
    use gzkp_groth16::r1cs::LinearCombination;
    use gzkp_groth16::setup::setup;
    use gzkp_telemetry::NoopSink;

    fn factor_cs() -> ConstraintSystem<Fr> {
        use gzkp_ff::Field;
        let mut cs = ConstraintSystem::<Fr>::new();
        let n = cs.alloc_input(Fr::from_u64(35));
        let p = cs.alloc(Fr::from_u64(5));
        let q = cs.alloc(Fr::from_u64(7));
        cs.enforce(
            LinearCombination::from_var(p),
            LinearCombination::from_var(q),
            LinearCombination::from_var(n),
        );
        cs
    }

    #[test]
    fn interrupt_persists_and_resume_matches_direct_prove() {
        let cs = Arc::new(factor_cs());
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        let (pk, vk) = (Arc::new(pk), Arc::new(vk));

        // Ground truth: the direct prover with the same seed.
        let ntt = GzkpNtt::auto::<Fr>(v100());
        let msm_g1 = GzkpMsm::new(v100());
        let msm_g2 = GzkpMsm::new(v100());
        let engines = ProverEngines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (expected, _) = prove(&cs, &pk, &engines, &mut StdRng::seed_from_u64(42)).unwrap();
        let expected = proof_to_bytes(&expected);

        // Run on "host 0", interrupt immediately at the MSM stage.
        let slot: CheckpointSlot = Arc::new(Mutex::new(None));
        let interrupt = Arc::new(AtomicBool::new(false));
        let mut task = CheckpointingGroth16Task::<Bn254>::new(
            cs.clone(),
            pk.clone(),
            v100(),
            None,
            42,
            slot.clone(),
            interrupt.clone(),
        );
        task.poly(&NoopSink).unwrap();
        interrupt.store(true, Ordering::Relaxed);
        let err = task.msm(&NoopSink).expect_err("interrupt must abort");
        assert!(err.contains("host killed"), "{err}");

        // "Host 1" picks the slot bytes up and finishes the proof.
        let bytes = slot.lock().unwrap().clone().expect("checkpoint persisted");
        let slot2: CheckpointSlot = Arc::new(Mutex::new(None));
        let mut resumed = CheckpointingGroth16Task::<Bn254>::resume(
            cs.clone(),
            pk.clone(),
            v100(),
            None,
            &bytes,
            slot2.clone(),
            Arc::new(AtomicBool::new(false)),
        )
        .unwrap()
        .with_verifying_key(vk);
        resumed.poly(&NoopSink).unwrap();
        let out = resumed.msm(&NoopSink).unwrap();
        assert_eq!(out.proof, expected);
        assert_eq!(resumed.verify_output(&out), Some(true));
        assert!(
            slot2.lock().unwrap().is_none(),
            "slot must clear on completion"
        );
    }
}
