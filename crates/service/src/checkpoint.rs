//! Checkpointing proof tasks: a [`ProofTask`] variant that persists the
//! backend's checkpoint after the POLY stage and after *every* MSM step,
//! and honors a cooperative interrupt flag between steps.
//!
//! This is the host-migration building block of the cluster layer: when a
//! simulated host dies mid-proof, the job's latest checkpoint bytes are
//! still in its [`CheckpointSlot`] (shared memory standing in for a
//! replicated checkpoint store), so the cluster scheduler rebuilds the
//! task on a surviving host with [`CheckpointingTask::resume`] and the
//! proof comes out byte-identical to an uninterrupted run — the blinding
//! RNG seed rides inside the checkpoint. The task is generic over
//! [`ProofSystem`], so Groth16's five-step and PLONK's four-step MSM
//! stages migrate through the same machinery.

use crate::job::{ProofTask, StageProfile, TaskOutput};
use gzkp_curves::pairing::PairingConfig;
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_msm::{GzkpMsm, MsmEngine, PreprocessStore};
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_proof_system::{Engines, ProofSystem};
use gzkp_telemetry::TelemetrySink;
use std::any::TypeId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Shared cell holding a job's latest serialized checkpoint. The cluster
/// keeps one per job; the task overwrites it at every step boundary and
/// clears it when the proof completes.
pub type CheckpointSlot = Arc<Mutex<Option<Vec<u8>>>>;

/// Stores `bytes` into `slot`, surviving a poisoned lock (a worker that
/// panicked mid-store left consistent `Option` state either way).
fn store_slot(slot: &CheckpointSlot, bytes: Option<Vec<u8>>) {
    *slot.lock().unwrap_or_else(PoisonError::into_inner) = bytes;
}

/// A [`crate::SystemTask`] twin that checkpoints after POLY and after
/// each MSM step, and fails fast (persisting first) when its interrupt
/// flag rises — the cluster sets that flag when it kills the host the
/// task is running on.
pub struct CheckpointingTask<S: ProofSystem> {
    circuit: Arc<S::Circuit>,
    pk: Arc<S::ProvingKey>,
    vk: Option<Arc<S::VerifyingKey>>,
    ntt: GzkpNtt,
    msm_g1: GzkpMsm,
    msm_g2: GzkpMsm,
    seed: u64,
    ckpt: Option<S::Checkpoint>,
    slot: CheckpointSlot,
    interrupt: Arc<AtomicBool>,
    msm_h2d_bytes: u64,
}

/// A checkpointing Groth16 task over one of the workspace curves.
pub type CheckpointingGroth16Task<P> = CheckpointingTask<gzkp_groth16::Groth16System<P>>;

/// A checkpointing KZG/PLONK task over one of the workspace curves.
pub type CheckpointingPlonkTask<P> = CheckpointingTask<gzkp_plonk::PlonkSystem<P>>;

impl<S: ProofSystem> CheckpointingTask<S> {
    /// Builds a fresh task (no prior checkpoint). `slot` receives the
    /// serialized checkpoint at every stage boundary; `interrupt` aborts
    /// the task between MSM steps when set.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        circuit: Arc<S::Circuit>,
        pk: Arc<S::ProvingKey>,
        device: DeviceConfig,
        store: Option<Arc<PreprocessStore>>,
        seed: u64,
        slot: CheckpointSlot,
        interrupt: Arc<AtomicBool>,
    ) -> Self {
        let tag = S::KIND.cache_tag();
        let mut msm_g1 = GzkpMsm::new(device.clone()).with_system_tag(tag);
        let mut msm_g2 = GzkpMsm::new(device.clone()).with_system_tag(tag);
        if let Some(store) = store {
            msm_g1 = msm_g1.with_store(store.clone());
            msm_g2 = msm_g2.with_store(store);
        }
        Self {
            circuit,
            pk,
            vk: None,
            ntt: GzkpNtt::auto::<<S::Pairing as PairingConfig>::Fr>(device),
            msm_g1,
            msm_g2,
            seed,
            ckpt: None,
            slot,
            interrupt,
            msm_h2d_bytes: 0,
        }
    }

    /// Rebuilds a task from checkpoint `bytes` taken on another host. The
    /// POLY stage becomes a no-op and the MSM stage picks up at the first
    /// incomplete step; the blinding seed comes from the checkpoint, so
    /// the finished proof matches the uninterrupted run byte for byte.
    ///
    /// # Errors
    ///
    /// Fails when `bytes` is not a valid checkpoint for system `S`.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        circuit: Arc<S::Circuit>,
        pk: Arc<S::ProvingKey>,
        device: DeviceConfig,
        store: Option<Arc<PreprocessStore>>,
        bytes: &[u8],
        slot: CheckpointSlot,
        interrupt: Arc<AtomicBool>,
    ) -> Result<Self, String> {
        let ckpt = S::checkpoint_from_bytes(bytes)?;
        let seed = S::checkpoint_seed(&ckpt);
        let mut task = Self::new(circuit, pk, device, store, seed, slot, interrupt);
        task.msm_h2d_bytes = S::checkpoint_scalar_bytes(&ckpt);
        task.ckpt = Some(ckpt);
        Ok(task)
    }

    /// Enables verify-before-return against `vk`, as on
    /// [`crate::SystemTask::with_verifying_key`].
    pub fn with_verifying_key(mut self, vk: Arc<S::VerifyingKey>) -> Self {
        self.vk = Some(vk);
        self
    }

    /// Number of MSM steps already completed (from a restored
    /// checkpoint, or from progress made this run).
    pub fn steps_done(&self) -> usize {
        self.ckpt
            .as_ref()
            .map_or(0, |c| S::checkpoint_steps_done(c))
    }
}

impl<S: ProofSystem> ProofTask for CheckpointingTask<S> {
    fn key_id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        TypeId::of::<S>().hash(&mut h);
        (Arc::as_ptr(&self.pk) as usize).hash(&mut h);
        h.finish()
    }

    fn poly(&mut self, sink: &dyn TelemetrySink) -> Result<(), String> {
        if self.ckpt.is_some() {
            // Resumed past POLY already; nothing to recompute.
            return Ok(());
        }
        if self.interrupt.load(Ordering::Relaxed) {
            return Err("interrupted before poly stage".to_string());
        }
        let artifacts = S::prove_poly(&self.circuit, &self.pk, &self.ntt, sink)
            .map_err(|e| format!("poly stage failed: {e}"))?;
        self.msm_h2d_bytes = S::poly_scalar_bytes(&artifacts);
        let ckpt = S::checkpoint_from_poly(self.seed, artifacts);
        store_slot(&self.slot, Some(S::checkpoint_to_bytes(&ckpt)));
        self.ckpt = Some(ckpt);
        Ok(())
    }

    fn msm(&mut self, sink: &dyn TelemetrySink) -> Result<TaskOutput, String> {
        let mut ckpt = self
            .ckpt
            .take()
            .ok_or_else(|| "msm stage scheduled before poly stage".to_string())?;
        let engines = Engines::<S::Pairing> {
            ntt: &self.ntt,
            msm_g1: &self.msm_g1 as &dyn MsmEngine<<S::Pairing as PairingConfig>::G1>,
            msm_g2: &self.msm_g2 as &dyn MsmEngine<<S::Pairing as PairingConfig>::G2>,
        };
        while let Some(step) = S::checkpoint_next_step(&ckpt) {
            if self.interrupt.load(Ordering::Relaxed) {
                // Persist progress and put the checkpoint back so a
                // retry on this task (rather than a cross-host resume)
                // also continues instead of restarting.
                store_slot(&self.slot, Some(S::checkpoint_to_bytes(&ckpt)));
                let done = S::checkpoint_steps_done(&ckpt);
                let total = S::total_msm_steps();
                self.ckpt = Some(ckpt);
                return Err(format!(
                    "host killed mid-proof: interrupted before msm step {step} ({done}/{total} done)"
                ));
            }
            S::checkpoint_run_step(&mut ckpt, &self.pk, &engines, step, sink)?;
            store_slot(&self.slot, Some(S::checkpoint_to_bytes(&ckpt)));
        }
        let (proof, report) = S::checkpoint_finish(ckpt, &self.pk)?;
        store_slot(&self.slot, None);
        Ok(TaskOutput {
            proof,
            report: Some(report),
        })
    }

    fn system(&self) -> &'static str {
        S::KIND.as_str()
    }

    fn bind_device(&mut self, device: &DeviceConfig) {
        self.ntt = self
            .ntt
            .rebind::<<S::Pairing as PairingConfig>::Fr>(device.clone());
        self.msm_g1.device = device.clone();
        self.msm_g2.device = device.clone();
    }

    fn msm_cost_estimate_ns(&self) -> f64 {
        let mut total = 0.0;
        for n in S::g1_msm_sizes(&self.pk) {
            total += MsmEngine::<<S::Pairing as PairingConfig>::G1>::plan_dense(&self.msm_g1, n)
                .total_ns();
        }
        for n in S::g2_msm_sizes(&self.pk) {
            total += MsmEngine::<<S::Pairing as PairingConfig>::G2>::plan_dense(&self.msm_g2, n)
                .total_ns();
        }
        total
    }

    fn poly_profile(&self) -> StageProfile {
        use gzkp_ff::PrimeField;
        let fr_bytes = (<S::Pairing as PairingConfig>::Fr::NUM_LIMBS * 8) as u64;
        StageProfile {
            h2d_bytes: S::witness_elems(&self.circuit) as u64 * fr_bytes,
            kernel_ns: self
                .ckpt
                .as_ref()
                .map_or(0.0, |c| S::checkpoint_poly_report(c).total_ns()),
            d2h_bytes: S::poly_d2h_elems(&self.pk) as u64 * fr_bytes,
            shards: 0,
        }
    }

    fn msm_profile(&self, output: &TaskOutput) -> StageProfile {
        StageProfile {
            h2d_bytes: self.msm_h2d_bytes,
            kernel_ns: output.report.as_ref().map_or(0.0, |r| r.msm.total_ns()),
            d2h_bytes: output.proof.len() as u64,
            shards: 0,
        }
    }

    fn verify_output(&self, output: &TaskOutput) -> Option<bool> {
        self.vk
            .as_ref()
            .map(|vk| S::verify_bytes(vk, &self.circuit, &output.proof))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_gpu_sim::v100;
    use gzkp_groth16::proof_to_bytes;
    use gzkp_groth16::prove::{prove, ProverEngines};
    use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};
    use gzkp_groth16::setup::setup;
    use gzkp_telemetry::NoopSink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factor_cs() -> ConstraintSystem<Fr> {
        use gzkp_ff::Field;
        let mut cs = ConstraintSystem::<Fr>::new();
        let n = cs.alloc_input(Fr::from_u64(35));
        let p = cs.alloc(Fr::from_u64(5));
        let q = cs.alloc(Fr::from_u64(7));
        cs.enforce(
            LinearCombination::from_var(p),
            LinearCombination::from_var(q),
            LinearCombination::from_var(n),
        );
        cs
    }

    #[test]
    fn interrupt_persists_and_resume_matches_direct_prove() {
        let cs = Arc::new(factor_cs());
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        let (pk, vk) = (Arc::new(pk), Arc::new(vk));

        // Ground truth: the direct prover with the same seed.
        let ntt = GzkpNtt::auto::<Fr>(v100());
        let msm_g1 = GzkpMsm::new(v100());
        let msm_g2 = GzkpMsm::new(v100());
        let engines = ProverEngines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (expected, _) = prove(&cs, &pk, &engines, &mut StdRng::seed_from_u64(42)).unwrap();
        let expected = proof_to_bytes(&expected);

        // Run on "host 0", interrupt immediately at the MSM stage.
        let slot: CheckpointSlot = Arc::new(Mutex::new(None));
        let interrupt = Arc::new(AtomicBool::new(false));
        let mut task = CheckpointingGroth16Task::<Bn254>::new(
            cs.clone(),
            pk.clone(),
            v100(),
            None,
            42,
            slot.clone(),
            interrupt.clone(),
        );
        task.poly(&NoopSink).unwrap();
        interrupt.store(true, Ordering::Relaxed);
        let err = task.msm(&NoopSink).expect_err("interrupt must abort");
        assert!(err.contains("host killed"), "{err}");

        // "Host 1" picks the slot bytes up and finishes the proof.
        let bytes = slot.lock().unwrap().clone().expect("checkpoint persisted");
        let slot2: CheckpointSlot = Arc::new(Mutex::new(None));
        let mut resumed = CheckpointingGroth16Task::<Bn254>::resume(
            cs.clone(),
            pk.clone(),
            v100(),
            None,
            &bytes,
            slot2.clone(),
            Arc::new(AtomicBool::new(false)),
        )
        .unwrap()
        .with_verifying_key(vk);
        resumed.poly(&NoopSink).unwrap();
        let out = resumed.msm(&NoopSink).unwrap();
        assert_eq!(out.proof, expected);
        assert_eq!(resumed.verify_output(&out), Some(true));
        assert!(
            slot2.lock().unwrap().is_none(),
            "slot must clear on completion"
        );
    }

    #[test]
    fn plonk_interrupt_persists_and_resume_matches_direct_prove() {
        use gzkp_ff::Field;
        use gzkp_plonk::{prove_bytes, setup as plonk_setup, PlonkCircuit, PlonkGate};
        use gzkp_proof_system::Engines;

        // x² = 9 with public x² exposed.
        let mut circuit = PlonkCircuit::new(&[Fr::from_u64(9)]);
        let x = circuit.alloc(Fr::from_u64(3));
        circuit.push_gate(PlonkGate {
            q_m: Fr::one(),
            q_o: -Fr::one(),
            a: x,
            b: x,
            c: 1, // the public variable
            ..PlonkGate::empty()
        });
        let circuit = Arc::new(circuit);
        let mut rng = StdRng::seed_from_u64(2);
        let (pk, vk) = plonk_setup::<Bn254, _>(&circuit, &mut rng).unwrap();
        let (pk, vk) = (Arc::new(pk), Arc::new(vk));

        let ntt = GzkpNtt::auto::<Fr>(v100());
        let msm_g1 = GzkpMsm::new(v100());
        let msm_g2 = GzkpMsm::new(v100());
        let engines = Engines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let (expected, _) = prove_bytes(&circuit, &pk, &engines, 42, &NoopSink).unwrap();

        let slot: CheckpointSlot = Arc::new(Mutex::new(None));
        let interrupt = Arc::new(AtomicBool::new(false));
        let mut task = CheckpointingPlonkTask::<Bn254>::new(
            circuit.clone(),
            pk.clone(),
            v100(),
            None,
            42,
            slot.clone(),
            interrupt.clone(),
        );
        task.poly(&NoopSink).unwrap();
        interrupt.store(true, Ordering::Relaxed);
        let err = task.msm(&NoopSink).expect_err("interrupt must abort");
        assert!(err.contains("host killed"), "{err}");
        assert!(err.contains("0/4 done"), "{err}");
        assert_eq!(task.system(), "plonk");

        let bytes = slot.lock().unwrap().clone().expect("checkpoint persisted");
        let slot2: CheckpointSlot = Arc::new(Mutex::new(None));
        let mut resumed = CheckpointingPlonkTask::<Bn254>::resume(
            circuit.clone(),
            pk.clone(),
            v100(),
            None,
            &bytes,
            slot2.clone(),
            Arc::new(AtomicBool::new(false)),
        )
        .unwrap()
        .with_verifying_key(vk);
        resumed.poly(&NoopSink).unwrap();
        let out = resumed.msm(&NoopSink).unwrap();
        assert_eq!(out.proof, expected);
        assert_eq!(resumed.verify_output(&out), Some(true));
        assert!(slot2.lock().unwrap().is_none());
    }
}
