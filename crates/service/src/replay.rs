//! Workload replay: turn a [`RequestWorkload`] file into circuits and
//! keys once, then run the request stream either as a sequential
//! prove-in-a-loop baseline or through the [`ProvingService`] — the
//! comparison `zkserve` and the `service_throughput` bench report.

use crate::checkpoint::{CheckpointSlot, CheckpointingGroth16Task};
use crate::service::ServiceStats;
use crate::{Groth16Task, JobError, JobOptions, Priority, ProvingService, ServiceConfig};
use gzkp_curves::bls12_381::Bls12_381;
use gzkp_curves::bn254::Bn254;
use gzkp_curves::pairing::PairingConfig;
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_gpu_sim::FaultSummary;
use gzkp_groth16::r1cs::ConstraintSystem;
use gzkp_groth16::{proof_to_bytes, prove, setup, ProverEngines, ProvingKey, VerifyingKey};
use gzkp_msm::GzkpMsm;
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_workloads::requests::{RequestCurve, RequestPriority, RequestWorkload};
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared circuit + proving key of one request class.
struct Keyed<P: PairingConfig> {
    cs: Arc<ConstraintSystem<P::Fr>>,
    pk: Arc<ProvingKey<P>>,
    vk: Arc<VerifyingKey<P>>,
}

impl<P: PairingConfig> Clone for Keyed<P> {
    fn clone(&self) -> Self {
        Self {
            cs: self.cs.clone(),
            pk: self.pk.clone(),
            vk: self.vk.clone(),
        }
    }
}

enum PreparedCurve {
    Bn254(Keyed<Bn254>),
    Bls12_381(Keyed<Bls12_381>),
}

/// One concrete proof request of the prepared stream.
struct PreparedRequest {
    curve: PreparedCurve,
    priority: Priority,
    deadline: Option<Duration>,
    seed: u64,
}

/// A workload with circuits synthesized and keys set up, ready to replay.
/// Requests are interleaved round-robin across the workload's classes, so
/// consecutive submissions alternate proving keys.
pub struct PreparedWorkload {
    requests: Vec<PreparedRequest>,
}

impl PreparedWorkload {
    /// Number of proof requests in arrival order.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Submission options of request `index` (its priority/deadline from
    /// the workload spec).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn request_options(&self, index: usize) -> JobOptions {
        let req = &self.requests[index];
        JobOptions {
            priority: req.priority,
            deadline: req.deadline,
            trace: false,
        }
    }

    /// Builds a checkpointing task for request `index` — the cluster
    /// layer's entry point. With `checkpoint` bytes (taken from a dead
    /// host's [`CheckpointSlot`]) the task resumes mid-proof; without,
    /// it starts fresh. `verify` arms verify-before-return against the
    /// request's verifying key.
    ///
    /// # Errors
    ///
    /// Fails when `index` is out of range or `checkpoint` doesn't decode
    /// for the request's curve.
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint_task(
        &self,
        index: usize,
        device: &DeviceConfig,
        store: Option<Arc<gzkp_msm::PreprocessStore>>,
        slot: CheckpointSlot,
        interrupt: Arc<std::sync::atomic::AtomicBool>,
        checkpoint: Option<&[u8]>,
        verify: bool,
    ) -> Result<Box<dyn crate::ProofTask>, String> {
        let req = self
            .requests
            .get(index)
            .ok_or_else(|| format!("request {index} out of range ({})", self.requests.len()))?;
        macro_rules! build {
            ($keyed:expr, $curve:ty) => {{
                let k = $keyed;
                let mut task = match checkpoint {
                    Some(bytes) => CheckpointingGroth16Task::<$curve>::resume(
                        k.cs.clone(),
                        k.pk.clone(),
                        device.clone(),
                        store,
                        bytes,
                        slot,
                        interrupt,
                    )?,
                    None => CheckpointingGroth16Task::<$curve>::new(
                        k.cs.clone(),
                        k.pk.clone(),
                        device.clone(),
                        store,
                        req.seed,
                        slot,
                        interrupt,
                    ),
                };
                if verify {
                    task = task.with_verifying_key(k.vk.clone());
                }
                Ok(Box::new(task) as Box<dyn crate::ProofTask>)
            }};
        }
        match &req.curve {
            PreparedCurve::Bn254(k) => build!(k, Bn254),
            PreparedCurve::Bls12_381(k) => build!(k, Bls12_381),
        }
    }

    /// Proves request `index` directly (no service, fresh engines on
    /// `device`) — the byte-identity ground truth cluster tests and the
    /// `--compare` paths check against.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn prove_direct(&self, index: usize, device: &DeviceConfig) -> Vec<u8> {
        let ntt = GzkpNtt::auto::<gzkp_ff::fields::Fr254>(device.clone());
        let msm_g1 = GzkpMsm::new(device.clone());
        let msm_g2 = GzkpMsm::new(device.clone());
        prove_one(&self.requests[index], &ntt, &msm_g1, &msm_g2)
    }
}

fn to_priority(p: RequestPriority) -> Priority {
    match p {
        RequestPriority::High => Priority::High,
        RequestPriority::Normal => Priority::Normal,
        RequestPriority::Low => Priority::Low,
    }
}

/// Synthesizes each class's circuit and runs its trusted setup (once per
/// class), then expands the per-class counts into the round-robin arrival
/// order. Deterministic in `workload.seed`.
pub fn prepare(workload: &RequestWorkload, device: &DeviceConfig) -> PreparedWorkload {
    let _ = device; // reserved for device-dependent preparation
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let classes: Vec<(PreparedCurve, &gzkp_workloads::requests::RequestSpec)> = workload
        .requests
        .iter()
        .map(|spec| {
            let prepared = match spec.curve {
                RequestCurve::Bn254 => {
                    let cs = Arc::new(synthetic_circuit::<<Bn254 as PairingConfig>::Fr, _>(
                        spec.constraints,
                        &mut rng,
                    ));
                    let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).expect("setup");
                    PreparedCurve::Bn254(Keyed {
                        cs,
                        pk: Arc::new(pk),
                        vk: Arc::new(vk),
                    })
                }
                RequestCurve::Bls12_381 => {
                    let cs = Arc::new(synthetic_circuit::<<Bls12_381 as PairingConfig>::Fr, _>(
                        spec.constraints,
                        &mut rng,
                    ));
                    let (pk, vk) = setup::<Bls12_381, _>(&cs, &mut rng).expect("setup");
                    PreparedCurve::Bls12_381(Keyed {
                        cs,
                        pk: Arc::new(pk),
                        vk: Arc::new(vk),
                    })
                }
            };
            (prepared, spec)
        })
        .collect();

    // Round-robin interleave: one request from each class per round.
    let mut requests = Vec::with_capacity(workload.total_requests());
    let max_count = workload.requests.iter().map(|r| r.count).max().unwrap_or(0);
    for round in 0..max_count {
        for (prepared, spec) in &classes {
            if round < spec.count {
                let curve = match prepared {
                    PreparedCurve::Bn254(k) => PreparedCurve::Bn254(k.clone()),
                    PreparedCurve::Bls12_381(k) => PreparedCurve::Bls12_381(k.clone()),
                };
                requests.push(PreparedRequest {
                    curve,
                    priority: to_priority(spec.priority),
                    deadline: spec.deadline_ms.map(Duration::from_millis),
                    seed: workload.seed.wrapping_add(requests.len() as u64),
                });
            }
        }
    }
    PreparedWorkload { requests }
}

/// Result of replaying a workload one way.
pub struct ReplayOutcome {
    /// Wall clock from first submission to last resolution.
    pub total: Duration,
    /// Proofs produced, in arrival order (`None` where the request was
    /// rejected, dropped, or failed). Byte-exact across replay modes with
    /// the same prepared workload.
    pub proofs: Vec<Option<Vec<u8>>>,
    /// Per-request latency (submission of the *batch* to that request's
    /// resolution) in milliseconds, for completed requests.
    pub latencies_ms: Vec<f64>,
    /// Requests rejected at submit (queue full).
    pub rejected: usize,
    /// Requests dropped at a deadline checkpoint.
    pub deadline_missed: usize,
    /// Requests cancelled or failed.
    pub failed: usize,
    /// Per-device utilization when the run used a device fleet
    /// ([`ServiceConfig::devices`] non-empty); `None` otherwise.
    pub fleet: Option<gzkp_runtime::FleetUtilization>,
    /// The fleet's `runtime→dev{n}→…` telemetry trace, alongside
    /// [`ReplayOutcome::fleet`].
    pub fleet_trace: Option<gzkp_telemetry::Trace>,
    /// The service's lifetime counters (retries, verify rejects,
    /// quarantines, …); `None` for the sequential baseline.
    pub stats: Option<ServiceStats>,
    /// Aggregate injected-fault counts when the run was a chaos replay.
    pub chaos: Option<FaultSummary>,
}

impl ReplayOutcome {
    /// Completed proofs per wall-clock second.
    pub fn throughput_per_s(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.latencies_ms.len() as f64 / secs
        }
    }

    /// The `p`-th latency percentile (nearest-rank) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

fn prove_one(req: &PreparedRequest, ntt: &GzkpNtt, msm_g1: &GzkpMsm, msm_g2: &GzkpMsm) -> Vec<u8> {
    match &req.curve {
        PreparedCurve::Bn254(k) => {
            let engines = ProverEngines::<Bn254> {
                ntt,
                msm_g1,
                msm_g2,
            };
            let mut rng = StdRng::seed_from_u64(req.seed);
            let (proof, _) = prove(&k.cs, &k.pk, &engines, &mut rng).expect("prove");
            proof_to_bytes(&proof)
        }
        PreparedCurve::Bls12_381(k) => {
            let engines = ProverEngines::<Bls12_381> {
                ntt,
                msm_g1,
                msm_g2,
            };
            let mut rng = StdRng::seed_from_u64(req.seed);
            let (proof, _) = prove(&k.cs, &k.pk, &engines, &mut rng).expect("prove");
            proof_to_bytes(&proof)
        }
    }
}

/// The baseline: prove every request in arrival order on stock engines
/// (process-wide FIFO preprocessing cache), one at a time. Deadlines and
/// priorities are ignored — this is the prove-in-a-loop a deployment
/// without a serving layer would run.
pub fn run_sequential(workload: &PreparedWorkload, device: &DeviceConfig) -> ReplayOutcome {
    let ntt = GzkpNtt::auto::<gzkp_ff::fields::Fr254>(device.clone());
    let msm_g1 = GzkpMsm::new(device.clone());
    let msm_g2 = GzkpMsm::new(device.clone());
    let start = Instant::now();
    let mut proofs = Vec::with_capacity(workload.requests.len());
    let mut latencies_ms = Vec::with_capacity(workload.requests.len());
    for req in &workload.requests {
        let proof = prove_one(req, &ntt, &msm_g1, &msm_g2);
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        proofs.push(Some(proof));
    }
    ReplayOutcome {
        total: start.elapsed(),
        proofs,
        latencies_ms,
        rejected: 0,
        deadline_missed: 0,
        failed: 0,
        fleet: None,
        fleet_trace: None,
        stats: None,
        chaos: None,
    }
}

/// Replays the workload through a [`ProvingService`] with the given
/// configuration: submit everything up front (honoring per-request
/// priorities/deadlines), drain, and collect.
pub fn run_service(
    workload: &PreparedWorkload,
    cfg: ServiceConfig,
    device: &DeviceConfig,
) -> ReplayOutcome {
    // Chaos replays corrupt proofs silently; the verify-before-return
    // guard is what catches them, so chaos implies verification.
    let verify = cfg.chaos.is_some();
    let service = ProvingService::start(cfg);
    let store = service.store();
    let start = Instant::now();
    let handles: Vec<Option<crate::JobHandle>> = workload
        .requests
        .iter()
        .map(|req| {
            let task: Box<dyn crate::ProofTask> = match &req.curve {
                PreparedCurve::Bn254(k) => {
                    let mut t = Groth16Task::<Bn254>::new(
                        k.cs.clone(),
                        k.pk.clone(),
                        device.clone(),
                        Some(store.clone()),
                        req.seed,
                    );
                    if verify {
                        t = t.with_verifying_key(k.vk.clone());
                    }
                    Box::new(t)
                }
                PreparedCurve::Bls12_381(k) => {
                    let mut t = Groth16Task::<Bls12_381>::new(
                        k.cs.clone(),
                        k.pk.clone(),
                        device.clone(),
                        Some(store.clone()),
                        req.seed,
                    );
                    if verify {
                        t = t.with_verifying_key(k.vk.clone());
                    }
                    Box::new(t)
                }
            };
            let opts = JobOptions {
                priority: req.priority,
                deadline: req.deadline,
                trace: false,
            };
            service.submit(task, opts).ok()
        })
        .collect();
    service.drain();
    let total = start.elapsed();

    let mut proofs = Vec::with_capacity(handles.len());
    let mut latencies_ms = Vec::new();
    let (mut rejected, mut missed, mut failed) = (0, 0, 0);
    for handle in handles {
        let Some(handle) = handle else {
            rejected += 1;
            proofs.push(None);
            continue;
        };
        let result = handle.wait();
        match result.outcome {
            Ok(output) => {
                latencies_ms.push(result.latency.as_secs_f64() * 1e3);
                proofs.push(Some(output.proof));
            }
            Err(JobError::DeadlineMissed) => {
                missed += 1;
                proofs.push(None);
            }
            Err(_) => {
                failed += 1;
                proofs.push(None);
            }
        }
    }
    let fleet = service.fleet_utilization();
    let fleet_trace = service.fleet_trace();
    let chaos = service.fault_injector().map(|inj| inj.summary());
    let stats = service.shutdown();
    ReplayOutcome {
        total,
        proofs,
        latencies_ms,
        rejected,
        deadline_missed: missed,
        failed,
        fleet,
        fleet_trace,
        stats: Some(stats),
        chaos,
    }
}
