//! Workload replay: turn a [`RequestWorkload`] file into circuits and
//! keys once, then run the request stream either as a sequential
//! prove-in-a-loop baseline or through the [`ProvingService`] — the
//! comparison `zkserve` and the `service_throughput` bench report.
//!
//! Request classes carry a proof system (`groth16` or `plonk`) as well as
//! a curve; mixed streams flow through the same service front door, with
//! PLONK circuits migrated from the synthetic R1CS by
//! [`gzkp_plonk::PlonkCircuit::from_r1cs`].

use crate::checkpoint::{CheckpointSlot, CheckpointingTask};
use crate::service::ServiceStats;
use crate::{JobError, JobOptions, Priority, ProvingService, ServiceConfig, SystemTask};
use gzkp_curves::bls12_381::Bls12_381;
use gzkp_curves::bn254::Bn254;
use gzkp_curves::pairing::PairingConfig;
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_gpu_sim::FaultSummary;
use gzkp_groth16::Groth16System;
use gzkp_msm::GzkpMsm;
use gzkp_ntt::gpu::GzkpNtt;
use gzkp_plonk::{PlonkCircuit, PlonkSystem};
use gzkp_proof_system::{Engines, ProofSystem};
use gzkp_telemetry::NoopSink;
use gzkp_workloads::requests::{RequestCurve, RequestPriority, RequestSystem, RequestWorkload};
use gzkp_workloads::synthetic::synthetic_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared circuit + keys of one request class under one backend.
struct Keyed<S: ProofSystem> {
    circuit: Arc<S::Circuit>,
    pk: Arc<S::ProvingKey>,
    vk: Arc<S::VerifyingKey>,
}

impl<S: ProofSystem> Clone for Keyed<S> {
    fn clone(&self) -> Self {
        Self {
            circuit: self.circuit.clone(),
            pk: self.pk.clone(),
            vk: self.vk.clone(),
        }
    }
}

enum PreparedClass {
    Groth16Bn254(Keyed<Groth16System<Bn254>>),
    Groth16Bls12_381(Keyed<Groth16System<Bls12_381>>),
    PlonkBn254(Keyed<PlonkSystem<Bn254>>),
    PlonkBls12_381(Keyed<PlonkSystem<Bls12_381>>),
}

impl Clone for PreparedClass {
    fn clone(&self) -> Self {
        match self {
            PreparedClass::Groth16Bn254(k) => PreparedClass::Groth16Bn254(k.clone()),
            PreparedClass::Groth16Bls12_381(k) => PreparedClass::Groth16Bls12_381(k.clone()),
            PreparedClass::PlonkBn254(k) => PreparedClass::PlonkBn254(k.clone()),
            PreparedClass::PlonkBls12_381(k) => PreparedClass::PlonkBls12_381(k.clone()),
        }
    }
}

/// Expands to `$body` with `$k` bound to the class's [`Keyed`] and `$S`
/// aliased to its concrete [`ProofSystem`] type — the one dispatch point
/// from the type-erased request stream to generic task code.
macro_rules! dispatch_class {
    ($class:expr, $k:ident, $S:ident, $body:expr) => {
        match $class {
            PreparedClass::Groth16Bn254($k) => {
                type $S = Groth16System<Bn254>;
                $body
            }
            PreparedClass::Groth16Bls12_381($k) => {
                type $S = Groth16System<Bls12_381>;
                $body
            }
            PreparedClass::PlonkBn254($k) => {
                type $S = PlonkSystem<Bn254>;
                $body
            }
            PreparedClass::PlonkBls12_381($k) => {
                type $S = PlonkSystem<Bls12_381>;
                $body
            }
        }
    };
}

/// One concrete proof request of the prepared stream.
struct PreparedRequest {
    class: PreparedClass,
    priority: Priority,
    deadline: Option<Duration>,
    seed: u64,
}

/// A workload with circuits synthesized and keys set up, ready to replay.
/// Requests are interleaved round-robin across the workload's classes, so
/// consecutive submissions alternate proving keys (and, in mixed
/// workloads, proof systems).
pub struct PreparedWorkload {
    requests: Vec<PreparedRequest>,
}

impl PreparedWorkload {
    /// Number of proof requests in arrival order.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Wire label of the proof system of request `index` (`"groth16"` /
    /// `"plonk"`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn request_system(&self, index: usize) -> &'static str {
        dispatch_class!(&self.requests[index].class, k, S, {
            let _ = k;
            S::KIND.as_str()
        })
    }

    /// Submission options of request `index` (its priority/deadline from
    /// the workload spec).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn request_options(&self, index: usize) -> JobOptions {
        let req = &self.requests[index];
        JobOptions {
            priority: req.priority,
            deadline: req.deadline,
            trace: false,
        }
    }

    /// Builds a checkpointing task for request `index` — the cluster
    /// layer's entry point. With `checkpoint` bytes (taken from a dead
    /// host's [`CheckpointSlot`]) the task resumes mid-proof; without,
    /// it starts fresh. `verify` arms verify-before-return against the
    /// request's verifying key.
    ///
    /// # Errors
    ///
    /// Fails when `index` is out of range or `checkpoint` doesn't decode
    /// for the request's curve and system.
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint_task(
        &self,
        index: usize,
        device: &DeviceConfig,
        store: Option<Arc<gzkp_msm::PreprocessStore>>,
        slot: CheckpointSlot,
        interrupt: Arc<std::sync::atomic::AtomicBool>,
        checkpoint: Option<&[u8]>,
        verify: bool,
    ) -> Result<Box<dyn crate::ProofTask>, String> {
        let req = self
            .requests
            .get(index)
            .ok_or_else(|| format!("request {index} out of range ({})", self.requests.len()))?;
        dispatch_class!(&req.class, k, S, {
            let mut task = match checkpoint {
                Some(bytes) => CheckpointingTask::<S>::resume(
                    k.circuit.clone(),
                    k.pk.clone(),
                    device.clone(),
                    store,
                    bytes,
                    slot,
                    interrupt,
                )?,
                None => CheckpointingTask::<S>::new(
                    k.circuit.clone(),
                    k.pk.clone(),
                    device.clone(),
                    store,
                    req.seed,
                    slot,
                    interrupt,
                ),
            };
            if verify {
                task = task.with_verifying_key(k.vk.clone());
            }
            Ok(Box::new(task) as Box<dyn crate::ProofTask>)
        })
    }

    /// Proves request `index` directly (no service, fresh engines on
    /// `device`) — the byte-identity ground truth cluster tests and the
    /// `--compare` paths check against.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn prove_direct(&self, index: usize, device: &DeviceConfig) -> Vec<u8> {
        let ntt = GzkpNtt::auto::<gzkp_ff::fields::Fr254>(device.clone());
        let msm_g1 = GzkpMsm::new(device.clone());
        let msm_g2 = GzkpMsm::new(device.clone());
        prove_one(&self.requests[index], &ntt, &msm_g1, &msm_g2)
    }
}

fn to_priority(p: RequestPriority) -> Priority {
    match p {
        RequestPriority::High => Priority::High,
        RequestPriority::Normal => Priority::Normal,
        RequestPriority::Low => Priority::Low,
    }
}

/// Synthesizes each class's circuit and runs its trusted setup (once per
/// class), then expands the per-class counts into the round-robin arrival
/// order. Deterministic in `workload.seed`. PLONK classes reuse the same
/// synthetic R1CS generator and migrate the circuit with
/// [`PlonkCircuit::from_r1cs`], so both backends prove the same relation.
pub fn prepare(workload: &RequestWorkload, device: &DeviceConfig) -> PreparedWorkload {
    let _ = device; // reserved for device-dependent preparation
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let classes: Vec<(PreparedClass, &gzkp_workloads::requests::RequestSpec)> = workload
        .requests
        .iter()
        .map(|spec| {
            let prepared = match (spec.curve, spec.system) {
                (RequestCurve::Bn254, RequestSystem::Groth16) => {
                    let cs = Arc::new(synthetic_circuit::<<Bn254 as PairingConfig>::Fr, _>(
                        spec.constraints,
                        &mut rng,
                    ));
                    let (pk, vk) = gzkp_groth16::setup::<Bn254, _>(&cs, &mut rng).expect("setup");
                    PreparedClass::Groth16Bn254(Keyed {
                        circuit: cs,
                        pk: Arc::new(pk),
                        vk: Arc::new(vk),
                    })
                }
                (RequestCurve::Bls12_381, RequestSystem::Groth16) => {
                    let cs = Arc::new(synthetic_circuit::<<Bls12_381 as PairingConfig>::Fr, _>(
                        spec.constraints,
                        &mut rng,
                    ));
                    let (pk, vk) =
                        gzkp_groth16::setup::<Bls12_381, _>(&cs, &mut rng).expect("setup");
                    PreparedClass::Groth16Bls12_381(Keyed {
                        circuit: cs,
                        pk: Arc::new(pk),
                        vk: Arc::new(vk),
                    })
                }
                (RequestCurve::Bn254, RequestSystem::Plonk) => {
                    let cs = synthetic_circuit::<<Bn254 as PairingConfig>::Fr, _>(
                        spec.constraints,
                        &mut rng,
                    );
                    let circuit = Arc::new(PlonkCircuit::from_r1cs(&cs));
                    let (pk, vk) =
                        gzkp_plonk::setup::<Bn254, _>(&circuit, &mut rng).expect("plonk setup");
                    PreparedClass::PlonkBn254(Keyed {
                        circuit,
                        pk: Arc::new(pk),
                        vk: Arc::new(vk),
                    })
                }
                (RequestCurve::Bls12_381, RequestSystem::Plonk) => {
                    let cs = synthetic_circuit::<<Bls12_381 as PairingConfig>::Fr, _>(
                        spec.constraints,
                        &mut rng,
                    );
                    let circuit = Arc::new(PlonkCircuit::from_r1cs(&cs));
                    let (pk, vk) =
                        gzkp_plonk::setup::<Bls12_381, _>(&circuit, &mut rng).expect("plonk setup");
                    PreparedClass::PlonkBls12_381(Keyed {
                        circuit,
                        pk: Arc::new(pk),
                        vk: Arc::new(vk),
                    })
                }
            };
            (prepared, spec)
        })
        .collect();

    // Round-robin interleave: one request from each class per round.
    let mut requests = Vec::with_capacity(workload.total_requests());
    let max_count = workload.requests.iter().map(|r| r.count).max().unwrap_or(0);
    for round in 0..max_count {
        for (prepared, spec) in &classes {
            if round < spec.count {
                requests.push(PreparedRequest {
                    class: prepared.clone(),
                    priority: to_priority(spec.priority),
                    deadline: spec.deadline_ms.map(Duration::from_millis),
                    seed: workload.seed.wrapping_add(requests.len() as u64),
                });
            }
        }
    }
    PreparedWorkload { requests }
}

/// Result of replaying a workload one way.
pub struct ReplayOutcome {
    /// Wall clock from first submission to last resolution.
    pub total: Duration,
    /// Proofs produced, in arrival order (`None` where the request was
    /// rejected, dropped, or failed). Byte-exact across replay modes with
    /// the same prepared workload.
    pub proofs: Vec<Option<Vec<u8>>>,
    /// Per-request latency (submission of the *batch* to that request's
    /// resolution) in milliseconds, for completed requests.
    pub latencies_ms: Vec<f64>,
    /// Requests rejected at submit (queue full).
    pub rejected: usize,
    /// Requests dropped at a deadline checkpoint.
    pub deadline_missed: usize,
    /// Requests cancelled or failed.
    pub failed: usize,
    /// Per-device utilization when the run used a device fleet
    /// ([`ServiceConfig::devices`] non-empty); `None` otherwise.
    pub fleet: Option<gzkp_runtime::FleetUtilization>,
    /// The fleet's `runtime→dev{n}→…` telemetry trace, alongside
    /// [`ReplayOutcome::fleet`].
    pub fleet_trace: Option<gzkp_telemetry::Trace>,
    /// The service's lifetime counters (retries, verify rejects,
    /// quarantines, …); `None` for the sequential baseline.
    pub stats: Option<ServiceStats>,
    /// Aggregate injected-fault counts when the run was a chaos replay.
    pub chaos: Option<FaultSummary>,
}

impl ReplayOutcome {
    /// Completed proofs per wall-clock second.
    pub fn throughput_per_s(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.latencies_ms.len() as f64 / secs
        }
    }

    /// The `p`-th latency percentile (nearest-rank) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

fn prove_one(req: &PreparedRequest, ntt: &GzkpNtt, msm_g1: &GzkpMsm, msm_g2: &GzkpMsm) -> Vec<u8> {
    dispatch_class!(&req.class, k, S, {
        let engines = Engines::<<S as ProofSystem>::Pairing> {
            ntt,
            msm_g1,
            msm_g2,
        };
        let poly = S::prove_poly(&k.circuit, &k.pk, ntt, &NoopSink).expect("poly");
        let (proof, _) = S::prove_msm(&k.pk, &engines, poly, req.seed, &NoopSink).expect("prove");
        proof
    })
}

/// The baseline: prove every request in arrival order on stock engines
/// (process-wide FIFO preprocessing cache), one at a time. Deadlines and
/// priorities are ignored — this is the prove-in-a-loop a deployment
/// without a serving layer would run.
pub fn run_sequential(workload: &PreparedWorkload, device: &DeviceConfig) -> ReplayOutcome {
    let ntt = GzkpNtt::auto::<gzkp_ff::fields::Fr254>(device.clone());
    let msm_g1 = GzkpMsm::new(device.clone());
    let msm_g2 = GzkpMsm::new(device.clone());
    let start = Instant::now();
    let mut proofs = Vec::with_capacity(workload.requests.len());
    let mut latencies_ms = Vec::with_capacity(workload.requests.len());
    for req in &workload.requests {
        let proof = prove_one(req, &ntt, &msm_g1, &msm_g2);
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        proofs.push(Some(proof));
    }
    ReplayOutcome {
        total: start.elapsed(),
        proofs,
        latencies_ms,
        rejected: 0,
        deadline_missed: 0,
        failed: 0,
        fleet: None,
        fleet_trace: None,
        stats: None,
        chaos: None,
    }
}

/// Replays the workload through a [`ProvingService`] with the given
/// configuration: submit everything up front (honoring per-request
/// priorities/deadlines), drain, and collect.
pub fn run_service(
    workload: &PreparedWorkload,
    cfg: ServiceConfig,
    device: &DeviceConfig,
) -> ReplayOutcome {
    // Chaos replays corrupt proofs silently; the verify-before-return
    // guard is what catches them, so chaos implies verification.
    let verify = cfg.chaos.is_some();
    let service = ProvingService::start(cfg);
    let store = service.store();
    let start = Instant::now();
    let handles: Vec<Option<crate::JobHandle>> = workload
        .requests
        .iter()
        .map(|req| {
            let task: Box<dyn crate::ProofTask> = dispatch_class!(&req.class, k, S, {
                let mut t = SystemTask::<S>::new(
                    k.circuit.clone(),
                    k.pk.clone(),
                    device.clone(),
                    Some(store.clone()),
                    req.seed,
                );
                if verify {
                    t = t.with_verifying_key(k.vk.clone());
                }
                Box::new(t)
            });
            let opts = JobOptions {
                priority: req.priority,
                deadline: req.deadline,
                trace: false,
            };
            service.submit(task, opts).ok()
        })
        .collect();
    service.drain();
    let total = start.elapsed();

    let mut proofs = Vec::with_capacity(handles.len());
    let mut latencies_ms = Vec::new();
    let (mut rejected, mut missed, mut failed) = (0, 0, 0);
    for handle in handles {
        let Some(handle) = handle else {
            rejected += 1;
            proofs.push(None);
            continue;
        };
        let result = handle.wait();
        match result.outcome {
            Ok(output) => {
                latencies_ms.push(result.latency.as_secs_f64() * 1e3);
                proofs.push(Some(output.proof));
            }
            Err(JobError::DeadlineMissed) => {
                missed += 1;
                proofs.push(None);
            }
            Err(_) => {
                failed += 1;
                proofs.push(None);
            }
        }
    }
    let fleet = service.fleet_utilization();
    let fleet_trace = service.fleet_trace();
    let chaos = service.fault_injector().map(|inj| inj.summary());
    let stats = service.shutdown();
    ReplayOutcome {
        total,
        proofs,
        latencies_ms,
        rejected,
        deadline_missed: missed,
        failed,
        fleet,
        fleet_trace,
        stats: Some(stats),
        chaos,
    }
}
