//! Property-based tests of the curve substrate: group laws, coordinate
//! systems, serialization, and tower-field structure — on all three curve
//! families.

use gzkp_curves::group::{batch_to_affine, random_points, Projective};
use gzkp_curves::serialize::{compress, decompress};
use gzkp_curves::{bls12_381, bn254, t753, CurveParams};
use gzkp_ff::ext::Fp2;
use gzkp_ff::Field;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rand_point<C: CurveParams>(seed: u64) -> Projective<C> {
    let mut rng = StdRng::seed_from_u64(seed);
    Projective::<C>::generator().mul(&C::Scalar::random(&mut rng))
}

fn group_laws_for<C: CurveParams>(seed: u64) {
    let p = rand_point::<C>(seed);
    let q = rand_point::<C>(seed ^ 0xdead);
    let r = rand_point::<C>(seed ^ 0xbeef);
    // Abelian group axioms.
    assert_eq!(p.add(&q), q.add(&p), "{} commutativity", C::NAME);
    assert_eq!(
        p.add(&q).add(&r),
        p.add(&q.add(&r)),
        "{} associativity",
        C::NAME
    );
    assert_eq!(p.add(&Projective::identity()), p, "{} identity", C::NAME);
    assert!(p.add(&p.neg()).is_identity(), "{} inverse", C::NAME);
    assert_eq!(p.double(), p.add(&p), "{} doubling", C::NAME);
    // Mixed addition agrees with full addition.
    assert_eq!(p.add(&q), p.add_mixed(&q.to_affine()), "{} mixed", C::NAME);
    // Affine roundtrip.
    assert_eq!(
        p.to_affine().to_projective(),
        p,
        "{} affine roundtrip",
        C::NAME
    );
    assert!(p.to_affine().is_on_curve(), "{} on-curve", C::NAME);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn group_laws_all_curves(seed in any::<u64>()) {
        group_laws_for::<bn254::G1Config>(seed);
        group_laws_for::<bn254::G2Config>(seed);
        group_laws_for::<bls12_381::G1Config>(seed);
        group_laws_for::<bls12_381::G2Config>(seed);
        group_laws_for::<t753::G1Config>(seed);
        group_laws_for::<t753::G2Config>(seed);
    }

    #[test]
    fn scalar_mul_homomorphism(seed in any::<u64>()) {
        // (a·b)·G == a·(b·G) on prime-order groups.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = bn254::Fr::random(&mut rng);
        let b = bn254::Fr::random(&mut rng);
        let g = Projective::<bn254::G1Config>::generator();
        prop_assert_eq!(g.mul(&(a * b)), g.mul(&a).mul(&b));
        // wNAF agrees too.
        prop_assert_eq!(g.mul_wnaf(&a, 5), g.mul(&a));
    }

    #[test]
    fn compression_roundtrip_random(seed in any::<u64>()) {
        let p = rand_point::<bls12_381::G1Config>(seed).to_affine();
        prop_assert_eq!(decompress::<bls12_381::G1Config>(&compress(&p)).unwrap(), p);
        let q = rand_point::<bls12_381::G2Config>(seed).to_affine();
        prop_assert_eq!(decompress::<bls12_381::G2Config>(&compress(&q)).unwrap(), q);
    }

    #[test]
    fn fp2_field_axioms(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: bn254::Fq2 = Fp2::random(&mut rng);
        let b: bn254::Fq2 = Fp2::random(&mut rng);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a.square(), a * a);
        prop_assert_eq!(a.conjugate().conjugate(), a);
        // Norm is multiplicative.
        prop_assert_eq!((a * b).norm(), a.norm() * b.norm());
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fp2::one());
        }
    }

    #[test]
    fn fq12_cyclotomic_structure(seed in any::<u64>()) {
        // After the final exponentiation's easy part, conj(f) == f^{-1}.
        let mut rng = StdRng::seed_from_u64(seed);
        let f: bn254::Fq12 = Field::random(&mut rng);
        prop_assume!(!f.is_zero());
        let f1 = f.conjugate() * f.inverse().unwrap(); // f^(q^6 − 1)
        let g = f1.frobenius_map(2) * f1; // ^(q^2 + 1): in cyclotomic subgroup
        prop_assert_eq!(g.conjugate(), g.inverse().unwrap());
    }
}

#[test]
fn batch_affine_pairs_match_projective_addition() {
    use gzkp_curves::group::{batch_add_affine_pairs, Affine};
    fn check<C: CurveParams>() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = random_points::<C, _>(16, &mut rng);
        let mut ps: Vec<Affine<C>> = Vec::new();
        let mut qs: Vec<Affine<C>> = Vec::new();
        // Generic pairs.
        for i in 0..8 {
            ps.push(pts[i]);
            qs.push(pts[i + 8]);
        }
        // Special cases: doubling, cancellation, identity on either side.
        ps.push(pts[0]);
        qs.push(pts[0]);
        ps.push(pts[1]);
        qs.push(pts[1].to_projective().neg().to_affine());
        ps.push(Affine::identity());
        qs.push(pts[2]);
        ps.push(pts[3]);
        qs.push(Affine::identity());
        ps.push(Affine::identity());
        qs.push(Affine::identity());
        let (sums, amortized) = batch_add_affine_pairs(&ps, &qs);
        for ((p, q), s) in ps.iter().zip(&qs).zip(&sums) {
            let expect = p.to_projective().add_mixed(q).to_affine();
            assert_eq!(*s, expect, "{} batch-affine pair", C::NAME);
        }
        // 8 generic chords + 1 tangent needed an inversion each; the
        // cancellation and identity pairs are trivial.
        assert_eq!(amortized, 9, "{} amortized count", C::NAME);
    }
    check::<bn254::G1Config>();
    check::<bn254::G2Config>();
    check::<bls12_381::G1Config>();
    check::<t753::G1Config>();
}

#[test]
fn batch_normalize_handles_identity_mix() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut pts: Vec<Projective<bn254::G1Config>> =
        random_points::<bn254::G1Config, _>(6, &mut rng)
            .iter()
            .map(|p| p.to_projective())
            .collect();
    pts.insert(2, Projective::identity());
    pts.push(Projective::identity());
    let affines = batch_to_affine(&pts);
    for (p, a) in pts.iter().zip(&affines) {
        assert_eq!(p.to_affine(), *a);
    }
    assert!(affines[2].is_identity());
}

#[test]
fn pairing_products_match_multi_pairing() {
    use gzkp_curves::{multi_pairing, PairingConfig};
    type P = bn254::Bn254;
    let mut rng = StdRng::seed_from_u64(6);
    let a = rand_point::<<P as PairingConfig>::G1>(1).to_affine();
    let b = rand_point::<<P as PairingConfig>::G2>(2).to_affine();
    let c = rand_point::<<P as PairingConfig>::G1>(3).to_affine();
    let d = rand_point::<<P as PairingConfig>::G2>(4).to_affine();
    let single = bn254::pairing(&a, &b) * bn254::pairing(&c, &d);
    let multi = multi_pairing::<P>(&[(a, b), (c, d)]);
    assert_eq!(single, multi);
    let _ = &mut rng;
}
