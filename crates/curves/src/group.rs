//! Short-Weierstrass elliptic-curve groups: affine and Jacobian points,
//! PADD/PMUL, batch normalization.
//!
//! The paper's MSM stage (§2.3, §4) is built entirely from the two basic
//! operations this module provides: point addition (PADD, which includes
//! doubling) and scalar point multiplication (PMUL). Everything is generic
//! over a [`CurveParams`] marker so the same MSM/Groth16 code serves G1 of
//! all three curve families and G2 of the pairing curves.

use core::fmt;
use core::marker::PhantomData;
use gzkp_ff::{Field, PrimeField};
use rand::Rng;

/// Static description of a short-Weierstrass curve `y² = x³ + a·x + b` over
/// a base field, with a designated scalar field for PMUL.
pub trait CurveParams:
    'static + Copy + Clone + Default + PartialEq + Eq + Send + Sync + fmt::Debug + core::hash::Hash
{
    /// Field the coordinates live in (`Fq` for G1, `Fq2` for G2).
    type Base: Field;
    /// Scalar field (the group order `r` for prime-order groups).
    type Scalar: PrimeField;
    /// Curve name for diagnostics, e.g. `"BN254.G1"`.
    const NAME: &'static str;
    /// The `a` coefficient (zero for all curves in this workspace).
    fn coeff_a() -> Self::Base;
    /// The `b` coefficient.
    fn coeff_b() -> Self::Base;
    /// A fixed base point.
    fn generator() -> (Self::Base, Self::Base);
}

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Affine<C: CurveParams> {
    /// x-coordinate (meaningless when `infinity` is set).
    pub x: C::Base,
    /// y-coordinate (meaningless when `infinity` is set).
    pub y: C::Base,
    /// Marker for the identity element.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates `(X : Y : Z)` representing
/// the affine point `(X/Z², Y/Z³)`; `Z = 0` encodes infinity.
#[derive(Clone, Copy)]
pub struct Projective<C: CurveParams> {
    /// Jacobian X.
    pub x: C::Base,
    /// Jacobian Y.
    pub y: C::Base,
    /// Jacobian Z (zero at infinity).
    pub z: C::Base,
    #[doc(hidden)]
    pub _marker: PhantomData<C>,
}

impl<C: CurveParams> fmt::Debug for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}(inf)", C::NAME)
        } else {
            write!(f, "{}({:?}, {:?})", C::NAME, self.x, self.y)
        }
    }
}

impl<C: CurveParams> fmt::Debug for Projective<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.to_affine())
    }
}

impl<C: CurveParams> Default for Affine<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: CurveParams> Default for Projective<C> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<C: CurveParams> Affine<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Self {
            x: C::Base::zero(),
            y: C::Base::zero(),
            infinity: true,
        }
    }

    /// Constructs a point from coordinates **without** an on-curve check.
    pub fn new_unchecked(x: C::Base, y: C::Base) -> Self {
        Self {
            x,
            y,
            infinity: false,
        }
    }

    /// Constructs a point, returning `None` if not on the curve.
    pub fn new(x: C::Base, y: C::Base) -> Option<Self> {
        let p = Self::new_unchecked(x, y);
        p.is_on_curve().then_some(p)
    }

    /// The curve's fixed base point.
    pub fn generator() -> Self {
        let (x, y) = C::generator();
        Self::new_unchecked(x, y)
    }

    /// Whether the point satisfies the curve equation.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let rhs = self.x.square() * self.x + C::coeff_a() * self.x + C::coeff_b();
        lhs == rhs
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Negation (reflect across the x-axis).
    pub fn neg(&self) -> Self {
        if self.infinity {
            *self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> Projective<C> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective {
                x: self.x,
                y: self.y,
                z: C::Base::one(),
                _marker: PhantomData,
            }
        }
    }

    /// Scalar multiplication (PMUL). Delegates to the Jacobian ladder.
    pub fn mul(&self, scalar: &C::Scalar) -> Projective<C> {
        self.to_projective().mul(scalar)
    }
}

impl<C: CurveParams> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        // (X1, Y1, Z1) == (X2, Y2, Z2)  iff  X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³.
        if self.is_identity() {
            return other.is_identity();
        }
        if other.is_identity() {
            return false;
        }
        let z1sq = self.z.square();
        let z2sq = other.z.square();
        self.x * z2sq == other.x * z1sq && self.y * (z2sq * other.z) == other.y * (z1sq * self.z)
    }
}
impl<C: CurveParams> Eq for Projective<C> {}

impl<C: CurveParams> Projective<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Self {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
            _marker: PhantomData,
        }
    }

    /// The curve's fixed base point.
    pub fn generator() -> Self {
        Affine::<C>::generator().to_projective()
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`dbl-2007-bl`, valid for any `a`).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let xx = self.x.square();
        let yy = self.y.square();
        let yyyy = yy.square();
        let zz = self.z.square();
        // S = 2*((X+YY)^2 - XX - YYYY)
        let s = ((self.x + yy).square() - xx - yyyy).double();
        // M = 3*XX + a*ZZ^2
        let a = C::coeff_a();
        let m = if a.is_zero() {
            xx.double() + xx
        } else {
            xx.double() + xx + a * zz.square()
        };
        let t = m.square() - s.double();
        let x3 = t;
        let y3 = m * (s - t) - yyyy.double().double().double(); // 8*YYYY
        let z3 = (self.y + self.z).square() - yy - zz;
        Self {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Point addition (`add-2007-bl`), PADD in the paper's notation.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * z2z2 * other.z;
        let s2 = other.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Mixed addition with an affine point (`madd-2007-bl`), the workhorse
    /// of bucket accumulation in MSM.
    pub fn add_mixed(&self, other: &Affine<C>) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_projective();
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * z1z1 * self.z;
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
            _marker: PhantomData,
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Scalar multiplication (PMUL) by a full-width scalar, binary
    /// double-and-add over the canonical representation.
    pub fn mul(&self, scalar: &C::Scalar) -> Self {
        let limbs = scalar.to_limbs();
        self.mul_limbs(&limbs)
    }

    /// Scalar multiplication by a little-endian limb slice.
    pub fn mul_limbs(&self, limbs: &[u64]) -> Self {
        let mut acc = Self::identity();
        let bits = 64 * limbs.len();
        let mut started = false;
        for i in (0..bits).rev() {
            if started {
                acc = acc.double();
            }
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
                started = true;
            }
        }
        acc
    }

    /// Scalar multiplication by a `u64` (used by window-weight preprocessing
    /// and tests).
    pub fn mul_u64(&self, scalar: u64) -> Self {
        self.mul_limbs(&[scalar])
    }

    /// Scalar multiplication with a width-`w` signed sliding window (wNAF):
    /// precomputes the odd multiples `{1, 3, …, 2^{w-1}−1}·P` and uses
    /// signed digits, cutting additions by ~2× over plain double-and-add.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= w <= 8`.
    pub fn mul_wnaf(&self, scalar: &C::Scalar, w: u32) -> Self {
        assert!((2..=8).contains(&w), "window width out of range");
        let limbs = scalar.to_limbs();
        let naf = wnaf_digits(&limbs, w);
        // Odd multiples table: table[i] = (2i+1)·P.
        let two_p = self.double();
        let mut table = Vec::with_capacity(1 << (w - 2));
        let mut cur = *self;
        for _ in 0..(1usize << (w - 2)) {
            table.push(cur);
            cur = cur.add(&two_p);
        }
        let mut acc = Self::identity();
        for &d in naf.iter().rev() {
            acc = acc.double();
            match d.cmp(&0) {
                core::cmp::Ordering::Greater => {
                    acc = acc.add(&table[(d as usize - 1) / 2]);
                }
                core::cmp::Ordering::Less => {
                    acc = acc.add(&table[((-d) as usize - 1) / 2].neg());
                }
                core::cmp::Ordering::Equal => {}
            }
        }
        acc
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.inverse().expect("nonzero z");
        let zinv2 = zinv.square();
        Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }
}

/// Batch-normalizes a slice of Jacobian points to affine with a single
/// inversion (Montgomery's trick), as GPU MSM implementations do when
/// writing bucket results back to global memory.
pub fn batch_to_affine<C: CurveParams>(points: &[Projective<C>]) -> Vec<Affine<C>> {
    let mut zs: Vec<C::Base> = points.iter().map(|p| p.z).collect();
    gzkp_ff::batch_inverse(&mut zs);
    points
        .iter()
        .zip(zs)
        .map(|(p, zinv)| {
            if p.is_identity() {
                Affine::identity()
            } else {
                let zinv2 = zinv.square();
                Affine {
                    x: p.x * zinv2,
                    y: p.y * zinv2 * zinv,
                    infinity: false,
                }
            }
        })
        .collect()
}

/// Batch point addition in affine coordinates: computes `ps[j] + qs[j]`
/// for every pair with a **single field inversion** (Montgomery's trick
/// over all chord/tangent denominators), the accumulation scheme of
/// production MSM implementations (cf. bellperson): an affine addition
/// costs ~6 field multiplications against ~14 for the mixed Jacobian
/// formula, once the per-addition inversion is amortized away.
///
/// Exact group arithmetic throughout — identity operands, doubling
/// (`p == q`), cancellation (`p == −q`), and 2-torsion doubling
/// (`y == 0`) all take their special-case paths — so results are
/// bit-identical to the projective formulas normalized to affine.
///
/// Returns the affine sums and the number of amortized additions (the
/// non-trivial ones that each would have needed its own inversion).
///
/// # Panics
///
/// Panics if `ps` and `qs` have different lengths.
pub fn batch_add_affine_pairs<C: CurveParams>(
    ps: &[Affine<C>],
    qs: &[Affine<C>],
) -> (Vec<Affine<C>>, usize) {
    assert_eq!(ps.len(), qs.len(), "pair slices must match");
    // λ denominators; zero marks a trivial pair (no inversion needed),
    // which `batch_inverse_count` skips. Non-trivial denominators are
    // never zero: x₂ ≠ x₁ for chords, y ≠ 0 for tangents.
    let mut dens: Vec<C::Base> = ps
        .iter()
        .zip(qs)
        .map(|(p, q)| {
            if p.infinity || q.infinity {
                C::Base::zero()
            } else if p.x == q.x {
                if p.y == q.y && !p.y.is_zero() {
                    p.y.double() // tangent: 2y
                } else {
                    C::Base::zero() // p = −q, or 2-torsion double → ∞
                }
            } else {
                q.x - p.x // chord: x₂ − x₁
            }
        })
        .collect();
    let amortized = gzkp_ff::batch_inverse_count(&mut dens);
    let out = ps
        .iter()
        .zip(qs)
        .zip(&dens)
        .map(|((p, q), dinv)| {
            if p.infinity {
                return *q;
            }
            if q.infinity {
                return *p;
            }
            if p.x == q.x && (p.y != q.y || p.y.is_zero()) {
                return Affine::identity();
            }
            let lambda = if p.x == q.x {
                // Tangent slope (3x² + a) / 2y.
                let xx = p.x.square();
                let a = C::coeff_a();
                let num = if a.is_zero() {
                    xx.double() + xx
                } else {
                    xx.double() + xx + a
                };
                num * *dinv
            } else {
                (q.y - p.y) * *dinv
            };
            let x3 = lambda.square() - p.x - q.x;
            let y3 = lambda * (p.x - x3) - p.y;
            Affine::new_unchecked(x3, y3)
        })
        .collect();
    (out, amortized)
}

/// Computes the width-`w` non-adjacent form of a little-endian limb
/// scalar: digits in `(−2^{w−1}, 2^{w−1})`, all odd or zero, no two
/// adjacent non-zeros within `w` positions.
pub fn wnaf_digits(limbs: &[u64], w: u32) -> Vec<i64> {
    let mut k = limbs.to_vec();
    let mut out = Vec::with_capacity(64 * limbs.len() + 1);
    let window = 1i64 << w;
    let half = 1i64 << (w - 1);
    let is_zero = |v: &[u64]| v.iter().all(|&l| l == 0);
    while !is_zero(&k) {
        if k[0] & 1 == 1 {
            let mut d = (k[0] & ((window - 1) as u64)) as i64;
            if d >= half {
                d -= window;
            }
            out.push(d);
            // k -= d
            if d > 0 {
                let mut borrow = d as u64;
                for limb in k.iter_mut() {
                    let (r, b) = limb.overflowing_sub(borrow);
                    *limb = r;
                    borrow = u64::from(b);
                    if borrow == 0 {
                        break;
                    }
                }
            } else {
                let mut carry = (-d) as u64;
                for limb in k.iter_mut() {
                    let (r, c) = limb.overflowing_add(carry);
                    *limb = r;
                    carry = u64::from(c);
                    if carry == 0 {
                        break;
                    }
                }
            }
        } else {
            out.push(0);
        }
        // k >>= 1
        let mut top = 0u64;
        for limb in k.iter_mut().rev() {
            let next = *limb & 1;
            *limb = (*limb >> 1) | (top << 63);
            top = next;
        }
    }
    out
}

/// Generates `n` pseudo-random curve points cheaply: a random-scalar base
/// point plus an arithmetic walk (one PADD per point, normalized in bulk).
///
/// MSM benchmarks need millions of points; deriving each one by full PMUL
/// would dominate setup time without changing any measured behaviour —
/// PADD/PMUL cost is independent of the point values.
pub fn random_points<C: CurveParams, R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Affine<C>> {
    if n == 0 {
        return Vec::new();
    }
    let g = Projective::<C>::generator();
    let base = g.mul(&C::Scalar::random(rng));
    let step = g.mul(&C::Scalar::random(rng));
    let mut acc = base;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(acc);
        acc = acc.add(&step);
    }
    batch_to_affine(&out)
}

/// Serialization helpers: affine points serialize as `(x limbs, y limbs,
/// infinity)` through the base field's serde impls.
impl<C: CurveParams> serde::Serialize for Affine<C>
where
    C::Base: serde::Serialize,
{
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (self.x, self.y, self.infinity).serialize(s)
    }
}

impl<'de, C: CurveParams> serde::Deserialize<'de> for Affine<C>
where
    C::Base: serde::Deserialize<'de>,
{
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let (x, y, infinity) = <(C::Base, C::Base, bool)>::deserialize(d)?;
        let p = Affine { x, y, infinity };
        if !p.is_on_curve() {
            return Err(serde::de::Error::custom("point not on curve"));
        }
        Ok(p)
    }
}
