//! T753 — the synthetic 753-bit curve standing in for MNT4753.
//!
//! The exact MNT4753 parameters are not available in this offline
//! environment (DESIGN.md §2). For everything the paper measures on
//! MNT4753 — NTT over a 753-bit scalar field, PADD/PMUL and MSM over a
//! 753-bit base field — only the *limb count* (12×u64) and scalar bit
//! length matter, not the specific curve. T753 therefore uses the
//! deterministically generated 753-bit primes from `tools/genparams` and
//! curves chosen by the point-first construction (`b = y₀² − x₀³`), which
//! guarantees a base point without needing square roots.
//!
//! **T753 is a performance stand-in, not a cryptographically sound group**:
//! its group order is unknown (no pairing, no subgroup checks). The Groth16
//! pipeline on T753 exercises proving cost only; end-to-end verified proofs
//! use BN254/BLS12-381.

use crate::group::{Affine, CurveParams, Projective};
use gzkp_ff::ext::{Fp2, Fp2Config};
use gzkp_ff::fields::{Fq753, Fr753};
use gzkp_ff::Field;

/// The base field (753-bit).
pub type Fq = Fq753;
/// The scalar field (753-bit, 2-adicity 30).
pub type Fr = Fr753;

/// G1 curve parameters: `y² = x³ + 3` with base point `(1, 2)`
/// (on-curve by construction: `4 = 1 + 3`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct G1Config;
impl CurveParams for G1Config {
    type Base = Fq;
    type Scalar = Fr;
    const NAME: &'static str = "T753.G1";
    fn coeff_a() -> Fq {
        Fq::zero()
    }
    fn coeff_b() -> Fq {
        Fq::from_u64(3)
    }
    fn generator() -> (Fq, Fq) {
        (Fq::from_u64(1), Fq::from_u64(2))
    }
}
/// Affine G1 point.
pub type G1Affine = Affine<G1Config>;
/// Jacobian G1 point.
pub type G1Projective = Projective<G1Config>;

/// `Fq2 = Fq[u]/(u² + 1)` (−1 is a non-residue: q ≡ 3 mod 4 by
/// construction in `genparams`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq2Config;
impl Fp2Config for Fq2Config {
    type Fp = Fq;
    fn nonresidue() -> Fq {
        -Fq::one()
    }
}
/// The quadratic extension of the T753 base field.
pub type Fq2 = Fp2<Fq2Config>;

/// G2-cost stand-in: a curve over `Fq2` so that the Groth16 b-query MSM on
/// T753 pays realistic extension-field PADD costs.
///
/// `y² = x³ + (5+2u)` with base point `(1+u, 2+u)`:
/// `(2+u)² = 3+4u`, `(1+u)³ = −2+2u`, and `3+4u − (−2+2u) = 5+2u`. ∎
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct G2Config;
impl CurveParams for G2Config {
    type Base = Fq2;
    type Scalar = Fr;
    const NAME: &'static str = "T753.G2";
    fn coeff_a() -> Fq2 {
        Fq2::zero()
    }
    fn coeff_b() -> Fq2 {
        Fq2::new(Fq::from_u64(5), Fq::from_u64(2))
    }
    fn generator() -> (Fq2, Fq2) {
        (
            Fq2::new(Fq::one(), Fq::one()),
            Fq2::new(Fq::from_u64(2), Fq::one()),
        )
    }
}
/// Affine G2 point.
pub type G2Affine = Affine<G2Config>;
/// Jacobian G2 point.
pub type G2Projective = Projective<G2Config>;

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::PrimeField;
    use rand::SeedableRng;
    use rand::{rngs::StdRng, Rng};

    #[test]
    fn generators_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G2Affine::generator().is_on_curve());
    }

    #[test]
    fn group_law_consistency_g1() {
        // T753's group order is unknown (performance stand-in), so scalar
        // identities must be over the integers, not mod r: use u64 scalars
        // where a + b cannot wrap the group order's multiple structure.
        let g = G1Projective::generator();
        let mut rng = StdRng::seed_from_u64(12);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        assert_eq!(
            g.mul_u64(a as u64 + b as u64),
            g.mul_u64(a as u64).add(&g.mul_u64(b as u64))
        );
    }

    #[test]
    fn group_law_consistency_g2() {
        let g = G2Projective::generator();
        let five_g = g.mul_u64(5);
        assert_eq!(five_g, g.double().double().add(&g));
        assert!(five_g.to_affine().is_on_curve());
    }

    #[test]
    fn scalar_bitwidth_is_753() {
        assert_eq!(Fr::MODULUS_BITS, 753);
        assert_eq!(Fq::MODULUS_BITS, 753);
        assert_eq!(Fr::NUM_LIMBS, 12);
    }
}
