//! Compressed point serialization: `x`-coordinate plus a sign/infinity
//! flag byte, with square-root decompression — the wire format proving
//! keys and proofs ship in (a Groth16 proof compresses to under 1 KB on
//! every supported curve, the succinctness property of §2.1).

use crate::group::{Affine, CurveParams};
use gzkp_ff::ext::{Fp2, Fp2Config};
use gzkp_ff::{Field, PrimeField};

/// A coordinate field that supports the compression round-trip: raw byte
/// encoding plus square roots with a canonical sign bit.
pub trait CoordField: Field {
    /// Fixed encoded size in bytes.
    fn encoded_len() -> usize;
    /// Canonical little-endian byte encoding.
    fn to_coord_bytes(&self) -> Vec<u8>;
    /// Inverse of [`Self::to_coord_bytes`]; `None` on malformed input.
    fn from_coord_bytes(bytes: &[u8]) -> Option<Self>;
    /// A square root, if one exists.
    fn coord_sqrt(&self) -> Option<Self>;
    /// Canonical "sign" used to disambiguate the two roots.
    fn sign_bit(&self) -> bool;
}

impl<P: gzkp_ff::FpParams<N>, const N: usize> CoordField for gzkp_ff::Fp<P, N> {
    fn encoded_len() -> usize {
        N * 8
    }
    fn to_coord_bytes(&self) -> Vec<u8> {
        self.to_limbs()
            .iter()
            .flat_map(|l| l.to_le_bytes())
            .collect()
    }
    fn from_coord_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != N * 8 {
            return None;
        }
        let limbs: Vec<u64> = bytes
            .chunks(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Self::from_limbs(&limbs)
    }
    fn coord_sqrt(&self) -> Option<Self> {
        self.sqrt()
    }
    fn sign_bit(&self) -> bool {
        self.is_odd_repr()
    }
}

impl<C: Fp2Config> CoordField for Fp2<C>
where
    C::Fp: PrimeField,
{
    fn encoded_len() -> usize {
        2 * C::Fp::NUM_LIMBS * 8
    }
    fn to_coord_bytes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self
            .c0
            .to_limbs()
            .iter()
            .flat_map(|l| l.to_le_bytes())
            .collect();
        out.extend(self.c1.to_limbs().iter().flat_map(|l| l.to_le_bytes()));
        out
    }
    fn from_coord_bytes(bytes: &[u8]) -> Option<Self> {
        let half = C::Fp::NUM_LIMBS * 8;
        if bytes.len() != 2 * half {
            return None;
        }
        let parse = |b: &[u8]| {
            let limbs: Vec<u64> = b
                .chunks(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            C::Fp::from_limbs(&limbs)
        };
        Some(Self::new(parse(&bytes[..half])?, parse(&bytes[half..])?))
    }
    fn coord_sqrt(&self) -> Option<Self> {
        self.sqrt()
    }
    fn sign_bit(&self) -> bool {
        // Lexicographic on (c1, c0) parities: c1's parity unless c1 = 0.
        if self.c1.is_zero() {
            self.c0.is_odd_repr()
        } else {
            self.c1.is_odd_repr()
        }
    }
}

/// Flag byte values of the compressed encoding.
const FLAG_INFINITY: u8 = 0b01;
const FLAG_Y_SIGN: u8 = 0b10;

/// Compresses an affine point to `1 + encoded_len` bytes.
pub fn compress<C: CurveParams>(p: &Affine<C>) -> Vec<u8>
where
    C::Base: CoordField,
{
    let mut out = Vec::with_capacity(1 + C::Base::encoded_len());
    if p.infinity {
        out.push(FLAG_INFINITY);
        out.extend(std::iter::repeat_n(0u8, C::Base::encoded_len()));
    } else {
        out.push(if p.y.sign_bit() { FLAG_Y_SIGN } else { 0 });
        out.extend(p.x.to_coord_bytes());
    }
    out
}

/// Decompresses a point, validating the curve equation.
///
/// Returns `None` on malformed bytes, non-residue `x³ + ax + b`, or bad
/// flags — never panics on attacker-controlled input.
pub fn decompress<C: CurveParams>(bytes: &[u8]) -> Option<Affine<C>>
where
    C::Base: CoordField,
{
    if bytes.len() != 1 + C::Base::encoded_len() {
        return None;
    }
    let flags = bytes[0];
    if flags & !(FLAG_INFINITY | FLAG_Y_SIGN) != 0 {
        return None;
    }
    if flags & FLAG_INFINITY != 0 {
        if bytes[1..].iter().any(|&b| b != 0) || flags & FLAG_Y_SIGN != 0 {
            return None;
        }
        return Some(Affine::identity());
    }
    let x = C::Base::from_coord_bytes(&bytes[1..])?;
    let rhs = x.square() * x + C::coeff_a() * x + C::coeff_b();
    let mut y = rhs.coord_sqrt()?;
    if y.sign_bit() != (flags & FLAG_Y_SIGN != 0) {
        y = -y;
    }
    // Re-check sign (handles y = 0 and cosets where both roots share parity).
    if y.sign_bit() != (flags & FLAG_Y_SIGN != 0) {
        return None;
    }
    Affine::new(x, y)
}

/// Serialized size of a compressed Groth16 proof on this curve pair:
/// two G1 points plus one G2 point.
pub fn proof_encoded_len<G1: CurveParams, G2: CurveParams>() -> usize
where
    G1::Base: CoordField,
    G2::Base: CoordField,
{
    2 * (1 + G1::Base::encoded_len()) + (1 + G2::Base::encoded_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::random_points;
    use crate::{bls12_381, bn254, t753};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn roundtrip_many<C: CurveParams>(seed: u64)
    where
        C::Base: CoordField,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        for p in random_points::<C, _>(20, &mut rng) {
            let bytes = compress(&p);
            assert_eq!(bytes.len(), 1 + C::Base::encoded_len());
            let back = decompress::<C>(&bytes).expect("roundtrip");
            assert_eq!(back, p, "{}", C::NAME);
        }
        // Identity.
        let id = Affine::<C>::identity();
        assert_eq!(decompress::<C>(&compress(&id)).unwrap(), id);
    }

    #[test]
    fn roundtrip_g1_all_curves() {
        roundtrip_many::<bn254::G1Config>(1);
        roundtrip_many::<bls12_381::G1Config>(2);
        roundtrip_many::<t753::G1Config>(3);
    }

    #[test]
    fn roundtrip_g2_pairing_curves() {
        roundtrip_many::<bn254::G2Config>(4);
        roundtrip_many::<bls12_381::G2Config>(5);
    }

    #[test]
    fn rejects_malformed() {
        // Wrong length.
        assert!(decompress::<bn254::G1Config>(&[0u8; 10]).is_none());
        // Bad flags.
        let p = Affine::<bn254::G1Config>::generator();
        let mut bytes = compress(&p);
        bytes[0] |= 0x80;
        assert!(decompress::<bn254::G1Config>(&bytes).is_none());
        // Non-residue x (x = 0 gives rhs = 3, a QR? flip bytes until fail):
        // easiest guaranteed-malformed: infinity flag with nonzero payload.
        let mut inf = compress(&Affine::<bn254::G1Config>::identity());
        inf[5] = 1;
        assert!(decompress::<bn254::G1Config>(&inf).is_none());
    }

    #[test]
    fn x_overflow_rejected() {
        // x bytes encoding a value >= p must be rejected.
        let p = Affine::<bn254::G1Config>::generator();
        let mut bytes = compress(&p);
        for b in bytes[1..].iter_mut() {
            *b = 0xff;
        }
        assert!(decompress::<bn254::G1Config>(&bytes).is_none());
    }

    #[test]
    fn groth16_proof_fits_in_1kb() {
        // The §2.1 succinctness property, as a compile-time-ish fact.
        assert!(proof_encoded_len::<bn254::G1Config, bn254::G2Config>() < 1024);
        assert!(proof_encoded_len::<bls12_381::G1Config, bls12_381::G2Config>() < 1024);
        assert_eq!(
            proof_encoded_len::<bn254::G1Config, bn254::G2Config>(),
            2 * 33 + 65
        );
    }

    #[test]
    fn fp2_sqrt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let v = bn254::Fq2::random(&mut rng);
            let sq = v.square();
            let r = sq.sqrt().expect("square has root");
            assert!(r == v || r == -v);
        }
    }
}
