//! BLS12-381: the 381-bit pairing-friendly curve of Zcash Sapling,
//! bellman and bellperson (paper Tables 3, 4, and the 381-bit columns of
//! Tables 5–8).
//!
//! * `G1: y² = x³ + 4` over `Fq`.
//! * `G2: y² = x³ + 4(1+u)` over `Fq2 = Fq[u]/(u²+1)` (M-type sextic twist).
//! * Ate pairing with loop count `|x|`, `x = -0xd201000000010000`.

use crate::group::{Affine, CurveParams, Projective};
use crate::pairing::{self, frobenius_coeffs, PairingConfig};
use gzkp_ff::ext::{Fp12, Fp12Config, Fp2, Fp2Config, Fp6Config};
use gzkp_ff::fields::{Fq381, Fr381};
use gzkp_ff::{BigInt, Field, PrimeField};
use std::sync::OnceLock;

/// Magnitude of the (negative) BLS parameter `x`.
pub const BLS_X: u64 = 0xd201000000010000;

/// The base field `Fq` of BLS12-381.
pub type Fq = Fq381;
/// The scalar field `Fr` of BLS12-381.
pub type Fr = Fr381;

/// `Fq2 = Fq[u]/(u² + 1)` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq2Config;
impl Fp2Config for Fq2Config {
    type Fp = Fq;
    fn nonresidue() -> Fq {
        -Fq::one()
    }
}
/// The quadratic extension `Fq2`.
pub type Fq2 = Fp2<Fq2Config>;

/// `Fq6 = Fq2[v]/(v³ − (1+u))` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq6Config;

fn xi() -> Fq2 {
    Fq2::new(Fq::one(), Fq::one())
}

static FP6_C1: OnceLock<Vec<Fq2>> = OnceLock::new();
static FP12_C1: OnceLock<Vec<Fq2>> = OnceLock::new();

impl Fp6Config for Fq6Config {
    type Fp2C = Fq2Config;
    fn nonresidue() -> Fq2 {
        xi()
    }
    fn frobenius_c1(power: usize) -> Fq2 {
        FP6_C1.get_or_init(|| frobenius_coeffs(xi(), 3, 6))[power % 6]
    }
    fn frobenius_c2(power: usize) -> Fq2 {
        Self::frobenius_c1(power).square()
    }
}
/// The sextic sub-tower `Fq6`.
pub type Fq6 = gzkp_ff::ext::Fp6<Fq6Config>;

/// `Fq12 = Fq6[w]/(w² − v)` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq12Config;
impl Fp12Config for Fq12Config {
    type Fp6C = Fq6Config;
    fn frobenius_c1(power: usize) -> Fq2 {
        FP12_C1.get_or_init(|| frobenius_coeffs(xi(), 6, 12))[power % 12]
    }
}
/// The full tower `Fq12`.
pub type Fq12 = Fp12<Fq12Config>;

fn fq_from_hex(s: &str) -> Fq {
    let b = BigInt::<6>::from_hex(s);
    Fq::from_limbs(&b.0).expect("constant below modulus")
}

/// G1 curve parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct G1Config;
impl CurveParams for G1Config {
    type Base = Fq;
    type Scalar = Fr;
    const NAME: &'static str = "BLS12-381.G1";
    fn coeff_a() -> Fq {
        Fq::zero()
    }
    fn coeff_b() -> Fq {
        Fq::from_u64(4)
    }
    fn generator() -> (Fq, Fq) {
        (
            fq_from_hex("0x17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb"),
            fq_from_hex("0x08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1"),
        )
    }
}
/// Affine G1 point.
pub type G1Affine = Affine<G1Config>;
/// Jacobian G1 point.
pub type G1Projective = Projective<G1Config>;

/// G2 curve parameters (on the sextic twist).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct G2Config;
impl CurveParams for G2Config {
    type Base = Fq2;
    type Scalar = Fr;
    const NAME: &'static str = "BLS12-381.G2";
    fn coeff_a() -> Fq2 {
        Fq2::zero()
    }
    fn coeff_b() -> Fq2 {
        // b' = 4(1 + u)
        Fq2::new(Fq::from_u64(4), Fq::from_u64(4))
    }
    fn generator() -> (Fq2, Fq2) {
        let x = Fq2::new(
            fq_from_hex("0x024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8"),
            fq_from_hex("0x13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e"),
        );
        let y = Fq2::new(
            fq_from_hex("0x0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801"),
            fq_from_hex("0x0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be"),
        );
        (x, y)
    }
}
/// Affine G2 point.
pub type G2Affine = Affine<G2Config>;
/// Jacobian G2 point.
pub type G2Projective = Projective<G2Config>;

/// The BLS12-381 pairing engine.
#[derive(Debug, Clone, Copy)]
pub struct Bls12_381;

impl PairingConfig for Bls12_381 {
    type Fr = Fr;
    type G1 = G1Config;
    type G2 = G2Config;
    type Fq2C = Fq2Config;
    type Fq12C = Fq12Config;
    fn loop_count() -> Vec<u64> {
        vec![BLS_X]
    }
    const LOOP_NEG: bool = true;
    const BN_FINAL_STEPS: bool = false;
    const TWIST_IS_D: bool = false;
}

/// Computes the ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Fq12 {
    pairing::pairing::<Bls12_381>(p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G2Affine::generator().is_on_curve());
    }

    #[test]
    fn generators_in_r_torsion() {
        let r = Fr::characteristic();
        assert!(G1Projective::generator().mul_limbs(&r).is_identity());
        assert!(G2Projective::generator().mul_limbs(&r).is_identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = G1Projective::generator();
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(g.mul(&a).add(&g.mul(&b)), g.mul(&(a + b)));
    }

    #[test]
    fn pairing_non_degenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert_ne!(e, Fq12::one());
        assert_eq!(e.pow(&Fr::characteristic()), Fq12::one());
    }

    #[test]
    fn pairing_bilinear() {
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        let e = pairing(&p, &q);
        let p2 = p.mul(&Fr::from_u64(2)).to_affine();
        let q2 = Projective::<G2Config>::generator()
            .mul(&Fr::from_u64(2))
            .to_affine();
        assert_eq!(pairing(&p2, &q), e.square());
        assert_eq!(pairing(&p, &q2), e.square());
        assert_eq!(pairing(&p2, &q2), e.pow(&[4]));
    }

    #[test]
    fn batch_normalization_matches_individual() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = G1Projective::generator();
        let pts: Vec<_> = (0..9).map(|_| g.mul(&Fr::random(&mut rng))).collect();
        let batch = crate::group::batch_to_affine(&pts);
        for (p, a) in pts.iter().zip(&batch) {
            assert_eq!(p.to_affine(), *a);
            assert!(a.is_on_curve());
        }
    }

    #[test]
    fn random_points_are_on_curve() {
        let mut rng = StdRng::seed_from_u64(21);
        let pts = crate::group::random_points::<G1Config, _>(50, &mut rng);
        assert_eq!(pts.len(), 50);
        assert!(pts.iter().all(|p| p.is_on_curve() && !p.is_identity()));
    }
}
