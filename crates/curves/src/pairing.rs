//! Generic pairing machinery for BN- and BLS-family curves.
//!
//! Pairings only appear in the Groth16 *verifier* ("a few milliseconds" in
//! the paper, §2.1) — never in the benchmarked prover hot paths — so this
//! implementation optimizes for obviousness over speed:
//!
//! * G2 points are *untwisted* into `E(Fq12)` explicitly (`ψ`), so a single
//!   affine Miller loop over `Fq12` covers both D-type (BN254) and M-type
//!   (BLS12-381) twists;
//! * the Frobenius-adjusted additions of the BN optimal-ate loop are plain
//!   coordinate-wise Frobenius maps on `E(Fq12)` points;
//! * the final exponentiation uses Frobenius for the easy part and a
//!   directly computed `(q⁴ − q² + 1)/r` exponent (via [`gzkp_ff::dynmont`])
//!   for the hard part — no family-specific addition chains to get wrong.
//!
//! Correctness is established by bilinearity/non-degeneracy tests in the
//! per-curve modules and by end-to-end Groth16 proof verification.

use crate::group::{Affine, CurveParams};
use gzkp_ff::ext::{Fp12, Fp12Config, Fp2, Fp2Config, Fp6, Fp6Config};
use gzkp_ff::{dynmont, Field, PrimeField};

/// Everything the generic pairing needs to know about a curve family.
pub trait PairingConfig: 'static + Copy + Send + Sync {
    /// The shared scalar field of G1 and G2.
    type Fr: PrimeField;
    /// G1 parameters (over `Fq`).
    type G1: CurveParams<Scalar = Self::Fr>;
    /// G2 parameters (over `Fq2`).
    type G2: CurveParams<Base = Fp2<Self::Fq2C>, Scalar = Self::Fr>;
    /// The quadratic extension config with `Fp = Fq`.
    type Fq2C: Fp2Config<Fp = <Self::G1 as CurveParams>::Base>;
    /// The degree-12 tower config.
    type Fq12C: Fp12Config;

    /// Magnitude of the Miller loop count (little-endian limbs):
    /// `|6x+2|` for BN curves, `|x|` for BLS curves.
    fn loop_count() -> Vec<u64>;
    /// Whether the loop count is negative (BLS12-381: yes).
    const LOOP_NEG: bool;
    /// Whether the BN-style final Frobenius additions are required.
    const BN_FINAL_STEPS: bool;
    /// D-type twist (`ψ(x,y) = (w²x, w³y)`) vs M-type (`(x/w², y/w³)`).
    const TWIST_IS_D: bool;
}

/// Target-group element type for a pairing config.
pub type Gt<P> = Fp12<<P as PairingConfig>::Fq12C>;

/// An affine point on `E(Fq12)`; infinity never occurs inside the Miller
/// loop for valid inputs (handled before entering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EFq12<C: Fp12Config> {
    x: Fp12<C>,
    y: Fp12<C>,
}

impl<C: Fp12Config> EFq12<C> {
    fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
        }
    }

    fn frobenius(&self, power: usize) -> Self {
        Self {
            x: self.x.frobenius_map(power),
            y: self.y.frobenius_map(power),
        }
    }

    /// Affine point doubling; returns `None` at infinity (y == 0).
    fn double(&self) -> Option<Self> {
        let two_y = self.y.double();
        let inv = two_y.inverse()?;
        let lambda = (self.x.square().double() + self.x.square()) * inv; // 3x²/(2y)
        let x3 = lambda.square() - self.x.double();
        let y3 = lambda * (self.x - x3) - self.y;
        Some(Self { x: x3, y: y3 })
    }

    /// Affine addition; returns `None` when the sum is infinity.
    fn add(&self, other: &Self) -> Option<Self> {
        if self.x == other.x {
            if self.y == other.y {
                return self.double();
            }
            return None;
        }
        let inv = (other.x - self.x).inverse().expect("x1 != x2");
        let lambda = (other.y - self.y) * inv;
        let x3 = lambda.square() - self.x - other.x;
        let y3 = lambda * (self.x - x3) - self.y;
        Some(Self { x: x3, y: y3 })
    }
}

/// Evaluates the line through `t` and `r` (tangent when `t == r`) at `p`.
fn line_eval<C: Fp12Config>(t: &EFq12<C>, r: &EFq12<C>, p: &EFq12<C>) -> Fp12<C> {
    if t.x == r.x && t.y != r.y {
        // Vertical line.
        return p.x - t.x;
    }
    let lambda = if t == r {
        let three_x2 = t.x.square().double() + t.x.square();
        three_x2 * t.y.double().inverse().expect("tangent at 2-torsion")
    } else {
        (r.y - t.y) * (r.x - t.x).inverse().expect("distinct x")
    };
    (p.y - t.y) - lambda * (p.x - t.x)
}

/// Embeds an `Fq` element into `Fq12` (c0 of c0 of c0).
fn embed_fq<P: PairingConfig>(v: <P::G1 as CurveParams>::Base) -> Gt<P>
where
    P::Fq12C: Fp12Config,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    let fq2 = Fp2::<P::Fq2C>::new(v, <P::G1 as CurveParams>::Base::zero());
    embed_fq2::<P>(fq2)
}

/// Embeds an `Fq2` element into `Fq12`.
fn embed_fq2<P: PairingConfig>(v: Fp2<P::Fq2C>) -> Gt<P>
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    Fp12::new(Fp6::new(v, Fp2::zero(), Fp2::zero()), Fp6::zero())
}

/// The generator `w` of `Fq12 = Fq6[w]`.
fn omega<C: Fp12Config>() -> Fp12<C> {
    Fp12::new(Fp6::zero(), Fp6::one())
}

/// Untwists a G2 point into `E(Fq12)`.
fn untwist<P: PairingConfig>(q: &Affine<P::G2>) -> EFq12<P::Fq12C>
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    let w = omega::<P::Fq12C>();
    let w2 = w.square();
    let w3 = w2 * w;
    let x = embed_fq2::<P>(q.x);
    let y = embed_fq2::<P>(q.y);
    if P::TWIST_IS_D {
        EFq12 {
            x: x * w2,
            y: y * w3,
        }
    } else {
        EFq12 {
            x: x * w2.inverse().expect("w invertible"),
            y: y * w3.inverse().expect("w invertible"),
        }
    }
}

/// Computes the Miller loop `f_{c,Q}(P)` (with BN final steps if configured).
///
/// Returns `Gt::one()` when either input is the identity.
pub fn miller_loop<P: PairingConfig>(p: &Affine<P::G1>, q: &Affine<P::G2>) -> Gt<P>
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    if p.is_identity() || q.is_identity() {
        return Gt::<P>::one();
    }
    let pe = EFq12 {
        x: embed_fq::<P>(p.x),
        y: embed_fq::<P>(p.y),
    };
    let qe = untwist::<P>(q);

    let c = P::loop_count();
    let bits = dynmont::num_bits(&c);
    let mut f = Gt::<P>::one();
    let mut t = qe;
    for i in (0..bits - 1).rev() {
        f = f.square() * line_eval(&t, &t, &pe);
        t = t.double().expect("no 2-torsion hit in Miller loop");
        if (c[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
            f *= line_eval(&t, &qe, &pe);
            t = t.add(&qe).expect("no cancellation in Miller loop");
        }
    }
    if P::LOOP_NEG {
        // f_{-c} ~ conj(f_c) up to factors killed by the final exponentiation.
        f = f.conjugate();
        t = t.neg();
    }
    if P::BN_FINAL_STEPS {
        // Optimal ate for BN curves: two Frobenius-twisted additions.
        let q1 = qe.frobenius(1);
        let q2 = qe.frobenius(2).neg();
        f *= line_eval(&t, &q1, &pe);
        t = t.add(&q1).expect("BN final step 1");
        f *= line_eval(&t, &q2, &pe);
        let _ = t.add(&q2); // final T unused
    }
    f
}

/// The final exponentiation `f^((q^12 - 1)/r)`.
pub fn final_exponentiation<P: PairingConfig>(f: &Gt<P>) -> Gt<P> {
    // Easy part: f^((q^6 - 1)(q^2 + 1)).
    let f_inv = f.inverse().expect("Miller output nonzero");
    let f1 = f.conjugate() * f_inv; // f^(q^6 - 1)
    let f2 = f1.frobenius_map(2) * f1; // ^(q^2 + 1)

    // Hard part: exponent (q^4 - q^2 + 1)/r computed with dynamic bigints.
    let q = <<P::G1 as CurveParams>::Base as Field>::characteristic();
    let r = P::Fr::characteristic();
    let q2 = dynmont::mul(&q, &q);
    let q4 = dynmont::mul(&q2, &q2);
    let num = dynmont::add(&dynmont::sub(&q4, &q2), &[1]);
    let (e, rem) = dynmont::div_rem(&num, &r);
    assert!(dynmont::is_zero(&rem), "r must divide q^4 - q^2 + 1");
    f2.pow(&e)
}

/// Full pairing `e(P, Q)`.
pub fn pairing<P: PairingConfig>(p: &Affine<P::G1>, q: &Affine<P::G2>) -> Gt<P>
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    final_exponentiation::<P>(&miller_loop::<P>(p, q))
}

/// One `(G1, G2)` input of a product-of-pairings.
pub type PairingPair<P> = (
    Affine<<P as PairingConfig>::G1>,
    Affine<<P as PairingConfig>::G2>,
);

/// Product of pairings `∏ e(Pᵢ, Qᵢ)` with a single final exponentiation —
/// the shape the Groth16 verification equation uses.
pub fn multi_pairing<P: PairingConfig>(pairs: &[PairingPair<P>]) -> Gt<P>
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
{
    let mut f = Gt::<P>::one();
    for (p, q) in pairs {
        f *= miller_loop::<P>(p, q);
    }
    final_exponentiation::<P>(&f)
}

/// Derives the Frobenius coefficient table `ξ^((q^i − 1)/divisor)` for
/// `i = 0..count`, used by the `Fp6`/`Fp12` configs of concrete curves.
///
/// # Panics
///
/// Panics if `divisor` does not divide `q^i − 1` (i.e. the tower is
/// misconfigured).
pub fn frobenius_coeffs<C: Fp2Config>(xi: Fp2<C>, divisor: u64, count: usize) -> Vec<Fp2<C>> {
    let q = C::Fp::characteristic();
    let mut out = Vec::with_capacity(count);
    let mut qi = vec![1u64]; // q^0
    for _ in 0..count {
        let num = dynmont::sub(&qi, &[1]);
        let (e, rem) = dynmont::div_rem(&num, &[divisor]);
        assert!(dynmont::is_zero(&rem), "divisor must divide q^i - 1");
        out.push(xi.pow(&e));
        qi = dynmont::mul(&qi, &q);
    }
    out
}
