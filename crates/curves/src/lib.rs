//! # gzkp-curves — elliptic-curve substrate
//!
//! The curve groups the GZKP reproduction computes over (see DESIGN.md):
//!
//! * [`bn254`] — ALT-BN128 (256-bit columns of the paper's tables), with
//!   optimal-ate pairing;
//! * [`bls12_381`] — BLS12-381 (Zcash workloads, 381-bit columns), with
//!   ate pairing;
//! * [`t753`] — the synthetic 753-bit stand-in for MNT4753 (no pairing;
//!   see the module docs for the substitution rationale).
//!
//! [`group`] provides the generic affine/Jacobian machinery (PADD, PMUL,
//! batch normalization) the MSM crate builds on; [`pairing`] the generic
//! Miller loop / final exponentiation used by the Groth16 verifier.
//!
//! ## Quickstart
//!
//! ```
//! use gzkp_curves::bn254::{pairing, G1Affine, G2Affine, Fr};
//! use gzkp_ff::Field;
//!
//! // e(2P, Q) == e(P, Q)²
//! let p = G1Affine::generator();
//! let q = G2Affine::generator();
//! let p2 = p.mul(&Fr::from_u64(2)).to_affine();
//! assert_eq!(pairing(&p2, &q), pairing(&p, &q).square());
//! ```

#![warn(missing_docs)]

pub mod bls12_381;
pub mod bn254;
pub mod group;
pub mod pairing;
pub mod serialize;
pub mod t753;

pub use group::{batch_to_affine, random_points, wnaf_digits, Affine, CurveParams, Projective};
pub use pairing::{final_exponentiation, miller_loop, multi_pairing, PairingConfig};
pub use serialize::{compress, decompress, CoordField};
