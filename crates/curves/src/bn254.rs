//! ALT-BN128 (BN254): the 254-bit pairing-friendly curve of Ethereum's
//! precompiles and libsnark's default backend.
//!
//! * `G1: y² = x³ + 3` over `Fq`, generator `(1, 2)`, cofactor 1.
//! * `G2: y² = x³ + 3/(9+u)` over `Fq2 = Fq[u]/(u²+1)` (D-type sextic twist).
//! * Optimal ate pairing with loop count `6x+2`, `x = 4965661367192848881`.

use crate::group::{Affine, CurveParams, Projective};
use crate::pairing::{self, frobenius_coeffs, PairingConfig};
use gzkp_ff::ext::{Fp12, Fp12Config, Fp2, Fp2Config, Fp6Config};
use gzkp_ff::fields::{Fq254, Fr254};
use gzkp_ff::{Field, PrimeField};
use std::sync::OnceLock;

/// BN curve parameter `x` (the "BN parameter", not a coordinate).
pub const BN_X: u64 = 4965661367192848881;

/// The base field `Fq` of BN254.
pub type Fq = Fq254;
/// The scalar field `Fr` of BN254.
pub type Fr = Fr254;

/// `Fq2 = Fq[u]/(u² + 1)` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq2Config;
impl Fp2Config for Fq2Config {
    type Fp = Fq;
    fn nonresidue() -> Fq {
        -Fq::one()
    }
}
/// The quadratic extension `Fq2`.
pub type Fq2 = Fp2<Fq2Config>;

/// `Fq6 = Fq2[v]/(v³ − (9+u))` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq6Config;

fn xi() -> Fq2 {
    Fq2::new(Fq::from_u64(9), Fq::one())
}

static FP6_C1: OnceLock<Vec<Fq2>> = OnceLock::new();
static FP12_C1: OnceLock<Vec<Fq2>> = OnceLock::new();

impl Fp6Config for Fq6Config {
    type Fp2C = Fq2Config;
    fn nonresidue() -> Fq2 {
        xi()
    }
    fn frobenius_c1(power: usize) -> Fq2 {
        FP6_C1.get_or_init(|| frobenius_coeffs(xi(), 3, 6))[power % 6]
    }
    fn frobenius_c2(power: usize) -> Fq2 {
        let c1 = Self::frobenius_c1(power);
        c1.square()
    }
}
/// The sextic sub-tower `Fq6`.
pub type Fq6 = gzkp_ff::ext::Fp6<Fq6Config>;

/// `Fq12 = Fq6[w]/(w² − v)` configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Fq12Config;
impl Fp12Config for Fq12Config {
    type Fp6C = Fq6Config;
    fn frobenius_c1(power: usize) -> Fq2 {
        FP12_C1.get_or_init(|| frobenius_coeffs(xi(), 6, 12))[power % 12]
    }
}
/// The full tower `Fq12`; the pairing target group lives here.
pub type Fq12 = Fp12<Fq12Config>;

/// G1 curve parameters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct G1Config;
impl CurveParams for G1Config {
    type Base = Fq;
    type Scalar = Fr;
    const NAME: &'static str = "BN254.G1";
    fn coeff_a() -> Fq {
        Fq::zero()
    }
    fn coeff_b() -> Fq {
        Fq::from_u64(3)
    }
    fn generator() -> (Fq, Fq) {
        (Fq::from_u64(1), Fq::from_u64(2))
    }
}
/// Affine G1 point.
pub type G1Affine = Affine<G1Config>;
/// Jacobian G1 point.
pub type G1Projective = Projective<G1Config>;

/// G2 curve parameters (on the sextic twist).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct G2Config;

fn fq_from_dec(s: &str) -> Fq {
    let b = gzkp_ff::BigInt::<4>::from_decimal(s);
    Fq::from_limbs(&b.0).expect("constant below modulus")
}

impl CurveParams for G2Config {
    type Base = Fq2;
    type Scalar = Fr;
    const NAME: &'static str = "BN254.G2";
    fn coeff_a() -> Fq2 {
        Fq2::zero()
    }
    fn coeff_b() -> Fq2 {
        // b2 = 3 / (9 + u)
        static B2: OnceLock<Fq2> = OnceLock::new();
        *B2.get_or_init(|| Fq2::from_u64(3) * xi().inverse().expect("xi nonzero"))
    }
    fn generator() -> (Fq2, Fq2) {
        // The standard generator (EIP-197 encoding).
        let x = Fq2::new(
            fq_from_dec(
                "10857046999023057135944570762232829481370756359578518086990519993285655852781",
            ),
            fq_from_dec(
                "11559732032986387107991004021392285783925812861821192530917403151452391805634",
            ),
        );
        let y = Fq2::new(
            fq_from_dec(
                "8495653923123431417604973247489272438418190587263600148770280649306958101930",
            ),
            fq_from_dec(
                "4082367875863433681332203403145435568316851327593401208105741076214120093531",
            ),
        );
        (x, y)
    }
}
/// Affine G2 point.
pub type G2Affine = Affine<G2Config>;
/// Jacobian G2 point.
pub type G2Projective = Projective<G2Config>;

/// The BN254 pairing engine.
#[derive(Debug, Clone, Copy)]
pub struct Bn254;

impl PairingConfig for Bn254 {
    type Fr = Fr;
    type G1 = G1Config;
    type G2 = G2Config;
    type Fq2C = Fq2Config;
    type Fq12C = Fq12Config;
    fn loop_count() -> Vec<u64> {
        // 6x + 2 (positive, > 2^64).
        let v = 6u128 * BN_X as u128 + 2;
        vec![v as u64, (v >> 64) as u64]
    }
    const LOOP_NEG: bool = false;
    const BN_FINAL_STEPS: bool = true;
    const TWIST_IS_D: bool = true;
}

/// Computes the optimal ate pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Fq12 {
    pairing::pairing::<Bn254>(p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G2Affine::generator().is_on_curve());
    }

    #[test]
    fn generators_in_r_torsion() {
        // r * G == infinity on both groups.
        let r = Fr::characteristic();
        assert!(G1Projective::generator().mul_limbs(&r).is_identity());
        assert!(G2Projective::generator().mul_limbs(&r).is_identity());
    }

    #[test]
    fn g1_small_multiples_consistent() {
        let g = G1Projective::generator();
        let two_g = g.double();
        let three_g = two_g.add(&g);
        assert_eq!(g.mul_u64(2), two_g);
        assert_eq!(g.mul_u64(3), three_g);
        assert_eq!(three_g.sub(&g), two_g);
        assert!(three_g.to_affine().is_on_curve());
    }

    #[test]
    fn wnaf_matches_double_and_add() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = G1Projective::generator();
        for w in [2u32, 4, 5, 8] {
            let s = Fr::random(&mut rng);
            assert_eq!(g.mul_wnaf(&s, w), g.mul(&s), "w={w}");
        }
        // Edge scalars.
        assert!(g.mul_wnaf(&Fr::zero(), 4).is_identity());
        assert_eq!(g.mul_wnaf(&Fr::one(), 4), g);
    }

    #[test]
    fn wnaf_digits_reconstruct() {
        // Sum of d_i * 2^i over the wNAF digits equals the scalar.
        let mut rng = StdRng::seed_from_u64(18);
        let s = Fr::random(&mut rng);
        let limbs = gzkp_ff::PrimeField::to_limbs(&s);
        let naf = crate::group::wnaf_digits(&limbs, 5);
        // Reconstruct via i128 chunks over a wide accumulator.
        let mut acc = vec![0u64; limbs.len() + 1];
        for &d in naf.iter().rev() {
            // acc = acc*2 + d
            let mut carry = 0u64;
            for limb in acc.iter_mut() {
                let next = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = next;
            }
            if d >= 0 {
                let mut c = d as u64;
                for limb in acc.iter_mut() {
                    let (r, o) = limb.overflowing_add(c);
                    *limb = r;
                    c = u64::from(o);
                    if c == 0 {
                        break;
                    }
                }
            } else {
                let mut b = (-d) as u64;
                for limb in acc.iter_mut() {
                    let (r, o) = limb.overflowing_sub(b);
                    *limb = r;
                    b = u64::from(o);
                    if b == 0 {
                        break;
                    }
                }
            }
        }
        assert_eq!(&acc[..limbs.len()], &limbs[..]);
        assert_eq!(acc[limbs.len()], 0);
        // Non-adjacency: no two nonzero digits within w positions.
        for win in naf.windows(5) {
            let nz = win.iter().filter(|&&d| d != 0).count();
            assert!(nz <= 1, "NAF property violated");
        }
    }

    #[test]
    fn mixed_add_matches_full_add() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = G1Projective::generator();
        let a = g.mul(&Fr::random(&mut rng));
        let b = g.mul(&Fr::random(&mut rng));
        assert_eq!(a.add(&b), a.add_mixed(&b.to_affine()));
    }

    #[test]
    fn pairing_non_degenerate() {
        let e = pairing(&G1Affine::generator(), &G2Affine::generator());
        assert_ne!(e, Fq12::one());
        assert!(!e.is_zero());
        // e has order dividing r.
        assert_eq!(e.pow(&Fr::characteristic()), Fq12::one());
    }

    #[test]
    fn pairing_bilinear() {
        let p = G1Affine::generator();
        let q = G2Affine::generator();
        let e = pairing(&p, &q);
        let p2 = p.mul(&Fr::from_u64(2)).to_affine();
        let q3 = Projective::<G2Config>::generator()
            .mul(&Fr::from_u64(3))
            .to_affine();
        assert_eq!(pairing(&p2, &q), e.square());
        assert_eq!(pairing(&p, &q3), e.square() * e);
        assert_eq!(pairing(&p2, &q3), e.pow(&[6]));
    }

    #[test]
    fn pairing_with_identity_is_one() {
        assert_eq!(
            pairing(&G1Affine::identity(), &G2Affine::generator()),
            Fq12::one()
        );
        assert_eq!(
            pairing(&G1Affine::generator(), &G2Affine::identity()),
            Fq12::one()
        );
    }

    #[test]
    fn frobenius_consistency() {
        // frobenius_map(1) must equal pow(q) on Fq12.
        let mut rng = StdRng::seed_from_u64(3);
        let f = Fq12::random(&mut rng);
        let q = Fq::characteristic();
        assert_eq!(f.frobenius_map(1), f.pow(&q));
        assert_eq!(f.frobenius_map(2), f.pow(&q).pow(&q));
        assert_eq!(f.frobenius_map(6), f.conjugate());
    }

    #[test]
    fn fq2_arithmetic_sanity() {
        // (9 + u)(9 - u) = 81 - u² = 82.
        let a = Fq2::new(Fq::from_u64(9), Fq::one());
        let b = Fq2::new(Fq::from_u64(9), -Fq::one());
        assert_eq!(a * b, Fq2::from_u64(82));
        let inv = a.inverse().unwrap();
        assert_eq!(a * inv, Fq2::one());
    }
}
