//! The Table 3/4 Zcash workloads (Sprout and Sapling transaction proofs on
//! BLS12-381), with the highly sparse witness distribution the paper's
//! load-balancing analysis is built on (§4.2, Figure 6).

use crate::{SparsityProfile, WorkloadSpec};

/// Zcash proof workloads with the exact "Vector size" column of Table 3.
pub fn zcash_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "Sapling_Output",
            vector_size: 8191,
            sparsity: SparsityProfile::SPARSE,
        },
        WorkloadSpec {
            name: "Sapling_Spend",
            vector_size: 131071,
            sparsity: SparsityProfile::SPARSE,
        },
        WorkloadSpec {
            name: "Sprout",
            vector_size: 2097151,
            sparsity: SparsityProfile::SPARSE,
        },
    ]
}

/// The Figure 6 analysis configuration: a Zcash MSM execution at scale
/// `2^17` with 256-bit scalars, window size 8 for the histogram plot.
pub fn figure6_config() -> (usize, u32) {
    (1 << 17, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::fields::Fr381;
    use gzkp_msm::bucket_histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table3_sizes_match_paper() {
        let sizes: Vec<usize> = zcash_workloads().iter().map(|w| w.vector_size).collect();
        assert_eq!(sizes, vec![8191, 131071, 2097151]);
    }

    #[test]
    fn sparse_buckets_are_skewed() {
        // Figure 6's headline: up to ~2.85× spread in bucket occupancy.
        let mut rng = StdRng::seed_from_u64(66);
        let w = WorkloadSpec {
            name: "fig6",
            vector_size: 1 << 13,
            sparsity: SparsityProfile::SPARSE,
        };
        let sv = w.sparse_scalar_vec::<Fr381, _>(&mut rng);
        let hist = bucket_histogram(&sv, 8);
        // Exclude bucket 0 (trivial) as the paper's plot does.
        let nonzero: Vec<u64> = hist[1..].iter().copied().filter(|&c| c > 0).collect();
        let max = *nonzero.iter().max().unwrap() as f64;
        let mean = nonzero.iter().sum::<u64>() as f64 / nonzero.len() as f64;
        assert!(
            max / mean > 1.5,
            "sparse witness should skew buckets: max/mean {}",
            max / mean
        );
    }
}
