//! The Table 2 zkSNARK application workloads (xJsnark-generated in the
//! paper; reproduced as size/sparsity profiles — see DESIGN.md).

use crate::{SparsityProfile, WorkloadSpec};

/// Application workloads with the exact "Vector size" column of Table 2.
/// These run on the 753-bit curve (MNT4753 in the paper, T753 here).
pub fn zksnark_apps() -> Vec<WorkloadSpec> {
    // Application witnesses carry substantial bound-check structure, but
    // less extreme than Zcash's; a moderate sparse profile.
    let app_profile = SparsityProfile {
        frac_zero: 0.25,
        frac_one: 0.30,
        frac_small: 0.15,
    };
    vec![
        WorkloadSpec {
            name: "AES",
            vector_size: 16383,
            sparsity: app_profile,
        },
        WorkloadSpec {
            name: "SHA-256",
            vector_size: 32767,
            sparsity: app_profile,
        },
        WorkloadSpec {
            name: "RSAEnc",
            vector_size: 98303,
            sparsity: app_profile,
        },
        WorkloadSpec {
            name: "RSASigVer",
            vector_size: 131071,
            sparsity: app_profile,
        },
        WorkloadSpec {
            name: "Merkle-Tree",
            vector_size: 294911,
            sparsity: app_profile,
        },
        WorkloadSpec {
            name: "Auction",
            vector_size: 557055,
            sparsity: app_profile,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sizes_match_paper() {
        let apps = zksnark_apps();
        let sizes: Vec<usize> = apps.iter().map(|w| w.vector_size).collect();
        assert_eq!(sizes, vec![16383, 32767, 98303, 131071, 294911, 557055]);
        assert_eq!(apps[4].name, "Merkle-Tree");
    }
}
