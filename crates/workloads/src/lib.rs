//! # gzkp-workloads — the paper's evaluation workloads
//!
//! Generators for every workload class in §5.1 (see DESIGN.md for the
//! substitution rationale — prover cost depends on vector sizes and scalar
//! distributions, not on gate semantics, so the xJsnark/Zcash circuits are
//! reproduced as profiles):
//!
//! * [`apps`] — the six Table 2 zkSNARK applications with the paper's
//!   exact vector sizes;
//! * [`zcash`] — the Table 3/4 Zcash transactions with the sparse
//!   0/1-heavy scalar distribution of §4.2 / Figure 6;
//! * [`synthetic`] — dense uniform inputs (Tables 5–8) and parameterized
//!   R1CS circuit generation for end-to-end prover runs;
//! * [`requests`] — mixed proof-request workload files for the proving
//!   service (`zkserve`).

#![warn(missing_docs)]

pub mod apps;
pub mod requests;
pub mod synthetic;
pub mod zcash;

use gzkp_ff::PrimeField;
use gzkp_msm::ScalarVec;
use rand::Rng;

/// Scalar-value distribution of a workload's `u⃗` vector (§4.2: bound
/// checks and range constraints put many 0s and 1s in real witnesses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityProfile {
    /// Fraction of exact zeros.
    pub frac_zero: f64,
    /// Fraction of exact ones.
    pub frac_one: f64,
    /// Fraction of small (< 2¹⁶) values.
    pub frac_small: f64,
    // Remainder: uniform full-width field elements.
}

impl SparsityProfile {
    /// Dense uniform scalars (the Tables 5–8 synthetic microbenchmarks).
    pub const DENSE: SparsityProfile = SparsityProfile {
        frac_zero: 0.0,
        frac_one: 0.0,
        frac_small: 0.0,
    };

    /// The sparse profile of real zkSNARK witnesses (Zcash-class): heavy in
    /// 0/1 from boolean and range gadgets. Calibrated so the cross-window
    /// bucket-occupancy spread lands near the paper's Figure 6 (~2.85×).
    pub const SPARSE: SparsityProfile = SparsityProfile {
        frac_zero: 0.20,
        frac_one: 0.15,
        frac_small: 0.10,
    };

    /// Samples one scalar from the profile.
    pub fn sample<F: PrimeField, R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        let x: f64 = rng.gen();
        if x < self.frac_zero {
            F::zero()
        } else if x < self.frac_zero + self.frac_one {
            F::one()
        } else if x < self.frac_zero + self.frac_one + self.frac_small {
            F::from_u64(rng.gen::<u16>() as u64)
        } else {
            F::random(rng)
        }
    }
}

/// One benchmark workload: a named vector size plus a scalar distribution.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Application name as printed in the paper's tables.
    pub name: &'static str,
    /// The `N` column of Tables 2/3 ("Vector size").
    pub vector_size: usize,
    /// Distribution of the `u⃗` scalar vector.
    pub sparsity: SparsityProfile,
}

impl WorkloadSpec {
    /// The padded power-of-two domain size.
    pub fn domain_size(&self) -> usize {
        self.vector_size.next_power_of_two()
    }

    /// Samples the sparse scalar vector `u⃗` (the a/b/l-query MSM inputs).
    pub fn sparse_scalars<F: PrimeField, R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<F> {
        (0..self.vector_size)
            .map(|_| self.sparsity.sample(rng))
            .collect()
    }

    /// Samples the dense scalar vector `h⃗` (the POLY output feeding the
    /// h-query MSM; uniformly distributed regardless of witness sparsity).
    pub fn dense_scalars<F: PrimeField, R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<F> {
        (0..self.vector_size).map(|_| F::random(rng)).collect()
    }

    /// Sparse scalars packed for the MSM engines.
    pub fn sparse_scalar_vec<F: PrimeField, R: Rng + ?Sized>(&self, rng: &mut R) -> ScalarVec {
        ScalarVec::from_field(&self.sparse_scalars::<F, R>(rng))
    }

    /// Dense scalars packed for the MSM engines.
    pub fn dense_scalar_vec<F: PrimeField, R: Rng + ?Sized>(&self, rng: &mut R) -> ScalarVec {
        ScalarVec::from_field(&self.dense_scalars::<F, R>(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::fields::Fr254;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sparse_profile_is_sparse() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = WorkloadSpec {
            name: "test",
            vector_size: 4000,
            sparsity: SparsityProfile::SPARSE,
        };
        let sv = w.sparse_scalar_vec::<Fr254, _>(&mut rng);
        let s = sv.sparsity();
        assert!(s > 0.28 && s < 0.45, "sparsity {s}");
    }

    #[test]
    fn dense_profile_is_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = WorkloadSpec {
            name: "test",
            vector_size: 1000,
            sparsity: SparsityProfile::DENSE,
        };
        let sv = w.sparse_scalar_vec::<Fr254, _>(&mut rng);
        assert!(sv.sparsity() < 0.01);
    }

    #[test]
    fn domain_rounds_up() {
        let w = WorkloadSpec {
            name: "t",
            vector_size: 16383,
            sparsity: SparsityProfile::DENSE,
        };
        assert_eq!(w.domain_size(), 16384);
    }
}
