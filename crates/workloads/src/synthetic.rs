//! Synthetic inputs: dense microbenchmark vectors (Tables 5–8) and
//! parameterized R1CS circuits for end-to-end prover runs.

use crate::{SparsityProfile, WorkloadSpec};
use gzkp_ff::PrimeField;
use gzkp_groth16::gadgets::{alloc_boolean, mimc_constants, mimc_gadget};
use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};
use rand::Rng;

/// A dense synthetic workload at scale `n` (the "synthetic data generated
/// by libsnark" of §5.1).
pub fn dense(n: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: "dense-synthetic",
        vector_size: n,
        sparsity: SparsityProfile::DENSE,
    }
}

/// Builds a satisfied R1CS instance with approximately `target_constraints`
/// constraints mixing multiplicative chains, boolean/range gadgets (the
/// source of witness sparsity) and a MiMC block, mimicking the gate mix of
/// real application circuits.
pub fn synthetic_circuit<F: PrimeField, R: Rng + ?Sized>(
    target_constraints: usize,
    rng: &mut R,
) -> ConstraintSystem<F> {
    let mut cs = ConstraintSystem::<F>::new();
    // A public "output" input so the instance has a statement.
    let pub_val = F::from_u64(4242);
    let pub_var = cs.alloc_input(pub_val);
    // Pin the public input with one constraint.
    cs.enforce(
        LinearCombination::from_var(pub_var),
        LinearCombination::from_const(F::one()),
        LinearCombination::from_const(pub_val),
    );

    // One MiMC block for realistic non-linear structure (~183 constraints).
    let constants = mimc_constants::<F>();
    let x0 = F::random(rng);
    let k0 = F::random(rng);
    let xv = cs.alloc(x0);
    let kv = cs.alloc(k0);
    mimc_gadget(&mut cs, xv, x0, kv, k0, &constants);

    // Fill the rest: 60% multiplication chain, 40% boolean allocations
    // (booleans put the 0/1 values into the witness, as range gadgets do
    // in real circuits).
    let mut acc_val = F::random(rng);
    let mut acc_var = cs.alloc(acc_val);
    while cs.num_constraints() < target_constraints {
        if cs.num_constraints() % 5 < 3 {
            let m_val = F::random(rng);
            let m_var = cs.alloc(m_val);
            let out_val = acc_val * m_val;
            let out_var = cs.alloc(out_val);
            cs.enforce(
                LinearCombination::from_var(acc_var),
                LinearCombination::from_var(m_var),
                LinearCombination::from_var(out_var),
            );
            acc_val = out_val;
            acc_var = out_var;
        } else {
            alloc_boolean(&mut cs, rng.gen());
        }
    }
    debug_assert!(cs.is_satisfied().is_ok());
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthetic_circuit_is_satisfied() {
        let mut rng = StdRng::seed_from_u64(5);
        let cs = synthetic_circuit::<Fr254, _>(1000, &mut rng);
        assert!(cs.is_satisfied().is_ok());
        assert!(cs.num_constraints() >= 1000);
        assert!(cs.num_constraints() < 1100);
    }

    #[test]
    fn synthetic_circuit_witness_has_zeros_and_ones() {
        let mut rng = StdRng::seed_from_u64(6);
        let cs = synthetic_circuit::<Fr254, _>(2000, &mut rng);
        let trivial = cs
            .aux_assignment
            .iter()
            .filter(|v| v.is_zero() || **v == Fr254::one())
            .count();
        assert!(
            trivial * 5 > cs.aux_assignment.len(),
            "want ≥20% trivial witnesses"
        );
    }
}
