//! Proof-request workload files: the mixed request streams `zkserve` and
//! the proving-service benchmarks replay.
//!
//! A workload file is JSON:
//!
//! ```json
//! {
//!   "seed": 42,
//!   "requests": [
//!     { "curve": "bn254",      "constraints": 256, "count": 4,
//!       "priority": "normal",  "deadline_ms": 60000 },
//!     { "curve": "bls12-381",  "constraints": 128, "count": 2,
//!       "priority": "high",    "system": "plonk" }
//!   ]
//! }
//! ```
//!
//! Each entry describes one request *class*: a synthetic circuit of
//! `constraints` constraints over `curve`, proven under `system`
//! (`"groth16"` or `"plonk"`) and submitted `count` times.
//! `count` (default 1), `priority` (default `"normal"`), `system`
//! (default `"groth16"`), `deadline_ms` (default: the service's default
//! deadline) and `seed` (default 42) are optional. Replay interleaves the classes round-robin so consecutive
//! submissions alternate proving keys — the access pattern that stresses
//! a per-key preprocessing cache.
//!
//! Parsing is hand-rolled over [`serde_json::parse_value`]: the vendored
//! serde derive does not cover enums-with-data or optional fields, and a
//! config format this small is better served by explicit errors anyway.

use serde_json::{parse_value, Value};

/// Pairing curve of one request class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestCurve {
    /// The 254-bit BN254 curve.
    Bn254,
    /// The 381-bit BLS12-381 curve.
    Bls12_381,
}

impl RequestCurve {
    /// The workload-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            RequestCurve::Bn254 => "bn254",
            RequestCurve::Bls12_381 => "bls12-381",
        }
    }
}

/// Proof system of one request class (mirrors
/// `ProofSystemKind` without depending on the proof-system crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestSystem {
    /// Per-circuit-setup Groth16 — the default.
    Groth16,
    /// Universal-setup KZG-committed PLONK.
    Plonk,
}

impl RequestSystem {
    /// The workload-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            RequestSystem::Groth16 => "groth16",
            RequestSystem::Plonk => "plonk",
        }
    }
}

/// Scheduling class of one request class (mirrors the service's
/// priorities without depending on the service crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPriority {
    /// Scheduled before everything else.
    High,
    /// The default class.
    Normal,
    /// Backfill work.
    Low,
}

impl RequestPriority {
    /// The workload-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            RequestPriority::High => "high",
            RequestPriority::Normal => "normal",
            RequestPriority::Low => "low",
        }
    }
}

/// One request class of a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpec {
    /// Curve the proofs run over.
    pub curve: RequestCurve,
    /// Proof system the proofs are produced under.
    pub system: RequestSystem,
    /// Synthetic-circuit size (R1CS constraints).
    pub constraints: usize,
    /// How many proofs of this class to request.
    pub count: usize,
    /// Scheduling class.
    pub priority: RequestPriority,
    /// Per-request deadline in milliseconds; `None` uses the service
    /// default.
    pub deadline_ms: Option<u64>,
}

/// A parsed workload file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestWorkload {
    /// Base seed for circuit synthesis and per-job blinding rngs.
    pub seed: u64,
    /// The request classes.
    pub requests: Vec<RequestSpec>,
}

impl RequestWorkload {
    /// Total number of proof requests across all classes.
    pub fn total_requests(&self) -> usize {
        self.requests.iter().map(|r| r.count).sum()
    }

    /// A small mixed-curve example (also what `zkserve example` prints).
    pub fn example() -> Self {
        Self {
            seed: 42,
            requests: vec![
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Groth16,
                    constraints: 256,
                    count: 4,
                    priority: RequestPriority::Normal,
                    deadline_ms: None,
                },
                RequestSpec {
                    curve: RequestCurve::Bls12_381,
                    system: RequestSystem::Groth16,
                    constraints: 128,
                    count: 2,
                    priority: RequestPriority::High,
                    deadline_ms: None,
                },
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Groth16,
                    constraints: 512,
                    count: 2,
                    priority: RequestPriority::Low,
                    deadline_ms: None,
                },
            ],
        }
    }

    /// A mixed-backend example: Groth16 and PLONK classes over both
    /// curves interleaved through one service front door (what
    /// `zkserve example --mixed` prints).
    pub fn mixed_example() -> Self {
        Self {
            seed: 42,
            requests: vec![
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Groth16,
                    constraints: 256,
                    count: 3,
                    priority: RequestPriority::Normal,
                    deadline_ms: None,
                },
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Plonk,
                    constraints: 256,
                    count: 3,
                    priority: RequestPriority::Normal,
                    deadline_ms: None,
                },
                RequestSpec {
                    curve: RequestCurve::Bls12_381,
                    system: RequestSystem::Plonk,
                    constraints: 128,
                    count: 2,
                    priority: RequestPriority::High,
                    deadline_ms: None,
                },
            ],
        }
    }

    /// A fleet-scaling workload: many same-priority single-curve requests
    /// with no deadlines, sized so throughput is limited by device count
    /// rather than queueing policy — what the `fleet_throughput` bench
    /// replays at 1 and 2 simulated devices.
    pub fn fleet_example() -> Self {
        Self {
            seed: 77,
            requests: vec![
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Groth16,
                    constraints: 256,
                    count: 6,
                    priority: RequestPriority::Normal,
                    deadline_ms: None,
                },
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Groth16,
                    constraints: 384,
                    count: 4,
                    priority: RequestPriority::Normal,
                    deadline_ms: None,
                },
                RequestSpec {
                    curve: RequestCurve::Bn254,
                    system: RequestSystem::Groth16,
                    constraints: 512,
                    count: 2,
                    priority: RequestPriority::Normal,
                    deadline_ms: None,
                },
            ],
        }
    }

    /// Parses a workload file.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = parse_value(text).map_err(|e| e.to_string())?;
        let seed = match root.get("seed") {
            None => 42,
            Some(v) => v
                .as_u64()
                .ok_or("\"seed\" must be a non-negative integer")?,
        };
        let Some(Value::Seq(entries)) = root.get("requests") else {
            return Err("workload must have a \"requests\" array".into());
        };
        if entries.is_empty() {
            return Err("\"requests\" must not be empty".into());
        }
        let requests = entries
            .iter()
            .enumerate()
            .map(|(i, e)| Self::parse_request(e).map_err(|msg| format!("requests[{i}]: {msg}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { seed, requests })
    }

    fn parse_request(e: &Value) -> Result<RequestSpec, String> {
        let curve = match e.get("curve").and_then(Value::as_str) {
            Some("bn254") => RequestCurve::Bn254,
            Some("bls12-381") | Some("bls12_381") => RequestCurve::Bls12_381,
            Some(other) => return Err(format!("unknown curve {other:?}")),
            None => return Err("missing \"curve\"".into()),
        };
        let system = match e.get("system").map(|v| v.as_str()) {
            None => RequestSystem::Groth16,
            Some(Some("groth16")) => RequestSystem::Groth16,
            Some(Some("plonk")) => RequestSystem::Plonk,
            Some(other) => return Err(format!("unknown system {other:?}")),
        };
        let constraints = e
            .get("constraints")
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer \"constraints\"")? as usize;
        if constraints == 0 {
            return Err("\"constraints\" must be positive".into());
        }
        let count = match e.get("count") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or("\"count\" must be a non-negative integer")? as usize,
        };
        let priority = match e.get("priority").map(|v| v.as_str()) {
            None => RequestPriority::Normal,
            Some(Some("high")) => RequestPriority::High,
            Some(Some("normal")) => RequestPriority::Normal,
            Some(Some("low")) => RequestPriority::Low,
            Some(other) => return Err(format!("unknown priority {other:?}")),
        };
        let deadline_ms = match e.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("\"deadline_ms\" must be an integer")?),
        };
        Ok(RequestSpec {
            curve,
            system,
            constraints,
            count,
            priority,
            deadline_ms,
        })
    }

    /// Serializes back to the workload-file format.
    pub fn to_json(&self) -> String {
        let requests = self
            .requests
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("curve".into(), Value::Str(r.curve.as_str().into())),
                    ("system".into(), Value::Str(r.system.as_str().into())),
                    ("constraints".into(), Value::U64(r.constraints as u64)),
                    ("count".into(), Value::U64(r.count as u64)),
                    ("priority".into(), Value::Str(r.priority.as_str().into())),
                ];
                if let Some(ms) = r.deadline_ms {
                    fields.push(("deadline_ms".into(), Value::U64(ms)));
                }
                Value::Map(fields)
            })
            .collect();
        let root = Value::Map(vec![
            ("seed".into(), Value::U64(self.seed)),
            ("requests".into(), Value::Seq(requests)),
        ]);
        serde_json::to_string_pretty(&root).expect("Value serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_file() {
        let text = r#"{
            "seed": 7,
            "requests": [
                {"curve": "bn254", "constraints": 256, "count": 4,
                 "priority": "high", "deadline_ms": 1500},
                {"curve": "bls12-381", "constraints": 128}
            ]
        }"#;
        let w = RequestWorkload::from_json(text).unwrap();
        assert_eq!(w.seed, 7);
        assert_eq!(w.total_requests(), 5);
        assert_eq!(w.requests[0].priority, RequestPriority::High);
        assert_eq!(w.requests[0].deadline_ms, Some(1500));
        // Defaults: count 1, normal priority, groth16, no deadline.
        assert_eq!(w.requests[1].count, 1);
        assert_eq!(w.requests[1].priority, RequestPriority::Normal);
        assert_eq!(w.requests[1].deadline_ms, None);
        assert_eq!(w.requests[1].curve, RequestCurve::Bls12_381);
        assert_eq!(w.requests[1].system, RequestSystem::Groth16);
    }

    #[test]
    fn parses_plonk_system() {
        let text = r#"{
            "requests": [
                {"curve": "bn254", "constraints": 64, "system": "plonk"}
            ]
        }"#;
        let w = RequestWorkload::from_json(text).unwrap();
        assert_eq!(w.requests[0].system, RequestSystem::Plonk);
    }

    #[test]
    fn mixed_example_round_trips() {
        let w = RequestWorkload::mixed_example();
        assert_eq!(w.total_requests(), 8);
        assert!(w.requests.iter().any(|r| r.system == RequestSystem::Plonk));
        assert!(w
            .requests
            .iter()
            .any(|r| r.system == RequestSystem::Groth16));
        let parsed = RequestWorkload::from_json(&w.to_json()).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn example_round_trips() {
        let w = RequestWorkload::example();
        let parsed = RequestWorkload::from_json(&w.to_json()).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn fleet_example_round_trips() {
        let w = RequestWorkload::fleet_example();
        assert_eq!(w.total_requests(), 12);
        let parsed = RequestWorkload::from_json(&w.to_json()).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn rejects_malformed_files() {
        for (text, needle) in [
            ("{", "JSON"),
            (r#"{"requests": []}"#, "must not be empty"),
            (r#"{"requests": [{"constraints": 4}]}"#, "missing \"curve\""),
            (
                r#"{"requests": [{"curve": "p256", "constraints": 4}]}"#,
                "unknown curve",
            ),
            (r#"{"requests": [{"curve": "bn254"}]}"#, "constraints"),
            (
                r#"{"requests": [{"curve": "bn254", "constraints": 0}]}"#,
                "positive",
            ),
            (
                r#"{"requests": [{"curve": "bn254", "constraints": 4, "priority": "urgent"}]}"#,
                "unknown priority",
            ),
            (
                r#"{"requests": [{"curve": "bn254", "constraints": 4, "system": "stark"}]}"#,
                "unknown system",
            ),
        ] {
            let err = RequestWorkload::from_json(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }
}
