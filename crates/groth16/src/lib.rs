//! # gzkp-groth16 — the zkSNARK protocol layer
//!
//! A complete Groth16 implementation over the workspace's pairing curves,
//! structured exactly as the paper's Figure 1 workflow:
//!
//! * [`r1cs`] — constraint systems and the [`r1cs::Circuit`] trait;
//! * [`gadgets`] — booleans, range checks, MiMC hashing, Merkle paths;
//! * [`qap`] — the R1CS → QAP reduction and the seven-NTT POLY stage;
//! * [`mod@setup`] — trusted setup producing proving/verification keys;
//! * [`mod@prove`] — the two-stage prover (POLY then five MSMs) with
//!   pluggable NTT/MSM engines, reporting per-stage simulated times;
//! * [`mod@verify`] — the pairing-equation verifier.
//!
//! ## End-to-end example
//!
//! ```
//! use gzkp_groth16::r1cs::{ConstraintSystem, LinearCombination};
//! use gzkp_groth16::{prove::{prove, ProverEngines}, setup::setup, verify::verify};
//! use gzkp_curves::bn254::{Bn254, Fr};
//! use gzkp_ff::Field;
//! use gzkp_msm::GzkpMsm;
//! use gzkp_ntt::GzkpNtt;
//! use gzkp_gpu_sim::v100;
//! use rand::SeedableRng;
//!
//! // Prove knowledge of factors of 35.
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let n = cs.alloc_input(Fr::from_u64(35));
//! let p = cs.alloc(Fr::from_u64(5));
//! let q = cs.alloc(Fr::from_u64(7));
//! cs.enforce(
//!     LinearCombination::from_var(p),
//!     LinearCombination::from_var(q),
//!     LinearCombination::from_var(n),
//! );
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
//! let ntt = GzkpNtt::auto::<Fr>(v100());
//! let msm_g1 = GzkpMsm::new(v100());
//! let msm_g2 = GzkpMsm::new(v100());
//! let engines = ProverEngines::<Bn254> { ntt: &ntt, msm_g1: &msm_g1, msm_g2: &msm_g2 };
//! let (proof, report) = prove(&cs, &pk, &engines, &mut rng).unwrap();
//! assert!(verify::<Bn254>(&vk, &proof, &[Fr::from_u64(35)]));
//! assert!(report.total_ms() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod gadgets;
pub mod prove;
pub mod qap;
pub mod r1cs;
pub mod setup;
pub mod system;
pub mod verify;

pub use batch::{batch_verify, proof_from_bytes, proof_to_bytes, PreparedVerifyingKey};
pub use checkpoint::{ProofCheckpoint, CHECKPOINT_VERSION, MSM_STEPS};
pub use prove::{
    prove, prove_msm, prove_plan, prove_poly, prove_with_telemetry, PolyArtifacts, Proof,
    ProveReport, ProverEngines,
};
pub use r1cs::{Circuit, ConstraintSystem, LinearCombination, SynthesisError, Variable};
pub use setup::{setup, ProvingKey, VerifyingKey};
pub use system::Groth16System;
pub use verify::{verify, verify_proof_bytes};
