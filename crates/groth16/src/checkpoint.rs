//! Portable proof checkpoints: a versioned byte encoding of the prover's
//! mid-flight state, so a job interrupted between stages — or between any
//! two of the five MSMs — can resume *on a different host* and still
//! produce a proof byte-identical to the uninterrupted run.
//!
//! The prover is already split at the POLY/MSM boundary
//! ([`crate::prove::prove_poly`] / [`crate::prove::prove_msm`]); this
//! module extends that split *into* the MSM stage. A
//! [`ProofCheckpoint`] captures:
//!
//! * the POLY artifacts (the three packed scalar vectors and the POLY
//!   stage report), and
//! * the partial result of every MSM step already executed (each MSM's
//!   full group-element sum, stored as a compressed affine point), plus
//!   the accumulated MSM kernel reports.
//!
//! Byte-identity across interruption holds by construction: every MSM is
//! an exact group computation (the same on any device or host), the
//! blinding factors `r, s` are drawn from the job's seeded RNG only in
//! [`ProofCheckpoint::finish`] — after the last MSM, exactly where the
//! monolithic prover draws them — and the final proof points are
//! normalized by `to_affine`, so round-tripping a partial sum through its
//! compressed affine form cannot change the proof bytes.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! "GZKPCKP" ++ version:u8
//! fr_bits:u32 fr_limbs:u32 g1_coord_len:u32 g2_coord_len:u32   // curve shape guard
//! seed:u64  done:u8 (bit i ⇒ MSM step i complete)
//! poly_report: len:u64 ++ JSON      msm_report: len:u64 ++ JSON
//! z⃗, aux, h⃗: per_scalar:u32 bits:u32 n:u64 ++ n·per_scalar little-endian u64 limbs
//! for each set bit of `done`, ascending: len:u64 ++ compressed affine point
//! ```
//!
//! All integers are little-endian. Decoding validates the magic, the
//! version, the curve shape against the target `P`, and every point
//! against the curve equation — a checkpoint from the wrong curve or a
//! truncated byte stream returns an error, never a panic.

use crate::prove::{PolyArtifacts, Proof, ProveReport, ProverEngines};
use crate::setup::ProvingKey;
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::serialize::{compress, decompress, CoordField};
use gzkp_curves::{Affine, CurveParams, Projective};
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::StageReport;
use gzkp_msm::ScalarVec;
use gzkp_telemetry::{self as telemetry, TelemetrySink};
use rand::Rng;

/// Current checkpoint wire-format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Number of MSM steps a checkpoint tracks (`a`, `b_g1`, `h`, `l`,
/// `b_g2`, in execution order).
pub const MSM_STEPS: usize = 5;

const MAGIC: &[u8; 7] = b"GZKPCKP";

/// Span names of the five MSM steps — the registry's Groth16 stage
/// table, the same names the monolithic [`crate::prove::prove_msm`]
/// emits, so stepwise traces line up.
const STEP_SPANS: [&str; MSM_STEPS] = telemetry::counters::GROTH16_MSM_STAGES;
/// Kernel-report label prefixes, matching the monolithic prover.
const STEP_LABELS: [&str; MSM_STEPS] = ["a_query", "b_g1", "h_query", "l_query", "b_g2"];

/// Human-readable label of MSM step `step` (for logs and errors).
///
/// # Panics
///
/// Panics if `step >= MSM_STEPS`.
pub fn step_label(step: usize) -> &'static str {
    STEP_LABELS[step]
}

/// Resumable mid-proof state: POLY artifacts plus zero or more completed
/// MSM partial sums. See the module docs for the serialized form.
pub struct ProofCheckpoint<P: PairingConfig> {
    /// Seed of the job's blinding-factor RNG. Carried in the checkpoint
    /// so the resuming host draws the same `r, s` — the resumer passes
    /// `StdRng::seed_from_u64(seed)` (or equivalent) to
    /// [`ProofCheckpoint::finish`].
    pub seed: u64,
    poly_report: StageReport,
    z: ScalarVec,
    aux: ScalarVec,
    h: ScalarVec,
    msm_report: StageReport,
    g1_partials: [Option<Projective<P::G1>>; 4],
    g2_partial: Option<Projective<P::G2>>,
}

impl<P: PairingConfig> ProofCheckpoint<P> {
    /// Opens a checkpoint right after the POLY stage: no MSM steps done.
    pub fn from_poly(seed: u64, poly: PolyArtifacts<P>) -> Self {
        let (poly_report, z, aux, h) = poly.into_parts();
        Self {
            seed,
            poly_report,
            z,
            aux,
            h,
            msm_report: StageReport::new("MSM"),
            g1_partials: [None, None, None, None],
            g2_partial: None,
        }
    }

    /// Per-step completion flags, in execution order.
    pub fn completed(&self) -> [bool; MSM_STEPS] {
        [
            self.g1_partials[0].is_some(),
            self.g1_partials[1].is_some(),
            self.g1_partials[2].is_some(),
            self.g1_partials[3].is_some(),
            self.g2_partial.is_some(),
        ]
    }

    /// Number of MSM steps already executed.
    pub fn steps_done(&self) -> usize {
        self.completed().iter().filter(|&&d| d).count()
    }

    /// The first MSM step still to run, or `None` when all five are done
    /// and only [`ProofCheckpoint::finish`] remains.
    pub fn next_step(&self) -> Option<usize> {
        self.completed().iter().position(|&d| !d)
    }

    /// The POLY stage report captured at checkpoint time.
    pub fn poly_report(&self) -> &StageReport {
        &self.poly_report
    }

    /// Bytes of packed scalars the MSM stage uploads (mirrors
    /// [`PolyArtifacts::scalar_bytes`]).
    pub fn scalar_bytes(&self) -> u64 {
        [&self.z, &self.aux, &self.h]
            .iter()
            .map(|v| (v.len() * v.limbs_per_scalar() * 8) as u64)
            .sum()
    }

    /// Executes MSM step `step` (one of the five inner products) and
    /// records its partial sum and kernel reports. A step already done is
    /// a no-op, so replays after a resume are harmless.
    ///
    /// # Errors
    ///
    /// Fails if `step >= MSM_STEPS`.
    pub fn run_step(
        &mut self,
        pk: &ProvingKey<P>,
        engines: &ProverEngines<'_, P>,
        step: usize,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String> {
        if step >= MSM_STEPS {
            return Err(format!("msm step {step} out of range (0..{MSM_STEPS})"));
        }
        if self.completed()[step] {
            return Ok(());
        }
        if step < 4 {
            let (points, scalars): (&[Affine<P::G1>], &ScalarVec) = match step {
                0 => (&pk.a_query, &self.z),
                1 => (&pk.b_g1_query, &self.z),
                2 => (&pk.h_query, &self.h),
                _ => (&pk.l_query, &self.aux),
            };
            let run = engines.msm_g1.msm(points, scalars);
            {
                let _span = telemetry::span(sink, STEP_SPANS[step]);
                engines
                    .msm_g1
                    .emit_msm_telemetry(points, scalars, &run, sink);
            }
            for mut k in run.report.kernels {
                k.name = format!("{}.{}", STEP_LABELS[step], k.name);
                self.msm_report.kernels.push(k);
            }
            self.g1_partials[step] = Some(run.result);
        } else {
            let run = engines.msm_g2.msm(&pk.b_g2_query, &self.z);
            {
                let _span = telemetry::span(sink, STEP_SPANS[4]);
                engines
                    .msm_g2
                    .emit_msm_telemetry(&pk.b_g2_query, &self.z, &run, sink);
            }
            for mut k in run.report.kernels {
                k.name = format!("{}.{}", STEP_LABELS[4], k.name);
                self.msm_report.kernels.push(k);
            }
            self.g2_partial = Some(run.result);
        }
        Ok(())
    }

    /// Blinding and proof assembly, identical to the tail of
    /// [`crate::prove::prove_msm`]: draws `r, s` from `rng` (seed it from
    /// [`ProofCheckpoint::seed`] for byte-identity with the uninterrupted
    /// run) and combines the five partial sums with the key elements.
    ///
    /// # Errors
    ///
    /// Fails if any MSM step has not run yet.
    pub fn finish<R: Rng + ?Sized>(
        self,
        pk: &ProvingKey<P>,
        rng: &mut R,
    ) -> Result<(Proof<P>, ProveReport), String> {
        if let Some(step) = self.next_step() {
            return Err(format!(
                "cannot finish: msm step {step} ({}) not yet run",
                step_label(step)
            ));
        }
        let [a_sum, b_g1_sum, h_sum, l_sum] =
            self.g1_partials.map(|p| p.expect("all g1 steps done"));
        let b_g2_sum = self.g2_partial.expect("g2 step done");

        use gzkp_ff::Field;
        let r = P::Fr::random(rng);
        let s = P::Fr::random(rng);

        let a = a_sum.add_mixed(&pk.alpha_g1).add(&pk.delta_g1.mul(&r));
        let b_g2 = b_g2_sum.add_mixed(&pk.beta_g2).add(&pk.delta_g2.mul(&s));
        let b_g1 = b_g1_sum.add_mixed(&pk.beta_g1).add(&pk.delta_g1.mul(&s));
        let c = l_sum
            .add(&h_sum)
            .add(&a.mul(&s))
            .add(&b_g1.mul(&r))
            .add(&pk.delta_g1.mul(&(r * s)).neg());

        Ok((
            Proof {
                a: a.to_affine(),
                b: b_g2.to_affine(),
                c: c.to_affine(),
            },
            ProveReport {
                poly: self.poly_report,
                msm: self.msm_report,
            },
        ))
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend((bytes.len() as u64).to_le_bytes());
    out.extend(bytes);
}

fn put_scalars(out: &mut Vec<u8>, v: &ScalarVec) {
    out.extend((v.limbs_per_scalar() as u32).to_le_bytes());
    out.extend(v.bits().to_le_bytes());
    out.extend((v.len() as u64).to_le_bytes());
    for limb in v.raw_limbs() {
        out.extend(limb.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("checkpoint truncated at offset {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn section(&mut self) -> Result<&'a [u8], String> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| "section length overflow".to_string())?;
        self.take(len)
    }

    fn scalars(&mut self) -> Result<ScalarVec, String> {
        let per_scalar = self.u32()? as usize;
        let bits = self.u32()?;
        let n = usize::try_from(self.u64()?).map_err(|_| "scalar count overflow".to_string())?;
        if per_scalar == 0 || per_scalar > 64 {
            return Err(format!("implausible limbs-per-scalar {per_scalar}"));
        }
        let total = n
            .checked_mul(per_scalar)
            .ok_or_else(|| "scalar buffer overflow".to_string())?;
        let raw = self.take(total * 8)?;
        let limbs = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(ScalarVec::from_raw(limbs, per_scalar, bits))
    }
}

fn report_from_json(bytes: &[u8], which: &str) -> Result<StageReport, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| format!("{which} report is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| format!("{which} report: {e:?}"))
}

impl<P: PairingConfig> ProofCheckpoint<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
{
    fn curve_shape() -> [u32; 4] {
        [
            P::Fr::MODULUS_BITS,
            P::Fr::NUM_LIMBS as u32,
            <P::G1 as CurveParams>::Base::encoded_len() as u32,
            <P::G2 as CurveParams>::Base::encoded_len() as u32,
        ]
    }

    /// Serializes to the versioned byte format (module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.scalar_bytes() as usize);
        out.extend(MAGIC);
        out.push(CHECKPOINT_VERSION);
        for word in Self::curve_shape() {
            out.extend(word.to_le_bytes());
        }
        out.extend(self.seed.to_le_bytes());
        let done = self
            .completed()
            .iter()
            .enumerate()
            .fold(0u8, |m, (i, &d)| if d { m | (1 << i) } else { m });
        out.push(done);
        put_bytes(
            &mut out,
            serde_json::to_string(&self.poly_report)
                .expect("report serializes")
                .as_bytes(),
        );
        put_bytes(
            &mut out,
            serde_json::to_string(&self.msm_report)
                .expect("report serializes")
                .as_bytes(),
        );
        put_scalars(&mut out, &self.z);
        put_scalars(&mut out, &self.aux);
        put_scalars(&mut out, &self.h);
        for (step, done) in self.completed().iter().enumerate() {
            if !done {
                continue;
            }
            let point = if step < 4 {
                compress(&self.g1_partials[step].as_ref().unwrap().to_affine())
            } else {
                compress(&self.g2_partial.as_ref().unwrap().to_affine())
            };
            put_bytes(&mut out, &point);
        }
        out
    }

    /// Decodes a checkpoint, validating the magic, version, curve shape,
    /// and every stored point against the curve equation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field; never panics
    /// on attacker-controlled input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err("not a GZKP checkpoint (bad magic)".into());
        }
        let version = r.u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let shape = [r.u32()?, r.u32()?, r.u32()?, r.u32()?];
        if shape != Self::curve_shape() {
            return Err(format!(
                "checkpoint curve shape {shape:?} does not match target curve {:?}",
                Self::curve_shape()
            ));
        }
        let seed = r.u64()?;
        let done = r.u8()?;
        if done >= 1 << MSM_STEPS {
            return Err(format!("invalid msm completion mask {done:#x}"));
        }
        let poly_report = report_from_json(r.section()?, "poly")?;
        let msm_report = report_from_json(r.section()?, "msm")?;
        let z = r.scalars()?;
        let aux = r.scalars()?;
        let h = r.scalars()?;
        let mut ckpt = Self {
            seed,
            poly_report,
            z,
            aux,
            h,
            msm_report,
            g1_partials: [None, None, None, None],
            g2_partial: None,
        };
        for step in 0..MSM_STEPS {
            if done & (1 << step) == 0 {
                continue;
            }
            let raw = r.section()?;
            if step < 4 {
                let affine = decompress::<P::G1>(raw)
                    .ok_or_else(|| format!("msm step {step} partial: invalid point"))?;
                ckpt.g1_partials[step] = Some(affine.to_projective());
            } else {
                let affine = decompress::<P::G2>(raw)
                    .ok_or_else(|| format!("msm step {step} partial: invalid point"))?;
                ckpt.g2_partial = Some(affine.to_projective());
            }
        }
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after checkpoint",
                bytes.len() - r.pos
            ));
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::proof_to_bytes;
    use crate::prove::{prove, prove_poly};
    use crate::r1cs::{ConstraintSystem, LinearCombination};
    use crate::setup::setup;
    use gzkp_curves::bls12_381::Bls12_381;
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_gpu_sim::v100;
    use gzkp_msm::GzkpMsm;
    use gzkp_ntt::gpu::GzkpNtt;
    use gzkp_telemetry::NoopSink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cs<F: gzkp_ff::PrimeField>() -> ConstraintSystem<F> {
        // A handful of multiplicative constraints: x_{i+1} = x_i · x_i.
        let mut cs = ConstraintSystem::<F>::new();
        let mut cur = F::from_u64(3);
        let mut var = cs.alloc_input(cur);
        for _ in 0..6 {
            let next = cur * cur;
            let next_var = cs.alloc(next);
            cs.enforce(
                LinearCombination::from_var(var),
                LinearCombination::from_var(var),
                LinearCombination::from_var(next_var),
            );
            cur = next;
            var = next_var;
        }
        cs
    }

    fn engines_for(dev: gzkp_gpu_sim::device::DeviceConfig) -> (GzkpNtt, GzkpMsm, GzkpMsm) {
        (
            GzkpNtt::auto::<Fr>(dev.clone()),
            GzkpMsm::new(dev.clone()),
            GzkpMsm::new(dev),
        )
    }

    #[test]
    fn stepwise_checkpointing_matches_monolithic_prove() {
        let cs = small_cs::<Fr>();
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, _vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = ProverEngines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };

        let (expected, _) = prove(&cs, &pk, &engines, &mut StdRng::seed_from_u64(9)).unwrap();
        let expected = proof_to_bytes(&expected);

        for interrupt_after in 0..=MSM_STEPS {
            let poly = prove_poly::<Bn254>(&cs, &pk, &ntt, &NoopSink).unwrap();
            let mut ckpt = ProofCheckpoint::from_poly(9, poly);
            for step in 0..interrupt_after {
                ckpt.run_step(&pk, &engines, step, &NoopSink).unwrap();
            }
            // Serialize mid-flight, "move hosts", resume on fresh engines.
            let bytes = ckpt.to_bytes();
            let mut resumed = ProofCheckpoint::<Bn254>::from_bytes(&bytes).unwrap();
            assert_eq!(resumed.steps_done(), interrupt_after);
            assert_eq!(resumed.seed, 9);
            let (ntt2, g1b, g2b) = engines_for(v100());
            let engines2 = ProverEngines::<Bn254> {
                ntt: &ntt2,
                msm_g1: &g1b,
                msm_g2: &g2b,
            };
            while let Some(step) = resumed.next_step() {
                resumed.run_step(&pk, &engines2, step, &NoopSink).unwrap();
            }
            let (proof, report) = resumed.finish(&pk, &mut StdRng::seed_from_u64(9)).unwrap();
            assert_eq!(
                proof_to_bytes(&proof),
                expected,
                "interrupted after {interrupt_after} msm steps"
            );
            assert!(report.total_ms() > 0.0);
        }
    }

    #[test]
    fn finish_requires_all_steps() {
        let cs = small_cs::<Fr>();
        let mut rng = StdRng::seed_from_u64(2);
        let (pk, _vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        let (ntt, _, _) = engines_for(v100());
        let poly = prove_poly::<Bn254>(&cs, &pk, &ntt, &NoopSink).unwrap();
        let ckpt = ProofCheckpoint::<Bn254>::from_poly(3, poly);
        let err = ckpt.finish(&pk, &mut StdRng::seed_from_u64(3)).unwrap_err();
        assert!(err.contains("step 0"), "{err}");
    }

    #[test]
    fn wrong_curve_and_corrupt_bytes_are_rejected() {
        let cs = small_cs::<Fr>();
        let mut rng = StdRng::seed_from_u64(4);
        let (pk, _vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        let (ntt, _, _) = engines_for(v100());
        let poly = prove_poly::<Bn254>(&cs, &pk, &ntt, &NoopSink).unwrap();
        let bytes = ProofCheckpoint::<Bn254>::from_poly(0, poly).to_bytes();

        let err = ProofCheckpoint::<Bls12_381>::from_bytes(&bytes)
            .err()
            .expect("wrong-curve decode must fail");
        assert!(err.contains("curve shape"), "{err}");

        assert!(ProofCheckpoint::<Bn254>::from_bytes(&[]).is_err());
        assert!(ProofCheckpoint::<Bn254>::from_bytes(b"GZKPCKPx").is_err());
        for cut in [8, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ProofCheckpoint::<Bn254>::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ProofCheckpoint::<Bn254>::from_bytes(&trailing).is_err());
    }

    #[test]
    fn replayed_steps_are_idempotent() {
        let cs = small_cs::<Fr>();
        let mut rng = StdRng::seed_from_u64(5);
        let (pk, _vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        let (ntt, msm_g1, msm_g2) = engines_for(v100());
        let engines = ProverEngines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm_g1,
            msm_g2: &msm_g2,
        };
        let poly = prove_poly::<Bn254>(&cs, &pk, &ntt, &NoopSink).unwrap();
        let mut ckpt = ProofCheckpoint::from_poly(7, poly);
        ckpt.run_step(&pk, &engines, 0, &NoopSink).unwrap();
        let kernels = ckpt.msm_report.kernels.len();
        ckpt.run_step(&pk, &engines, 0, &NoopSink).unwrap();
        assert_eq!(
            ckpt.msm_report.kernels.len(),
            kernels,
            "re-running a done step must not duplicate reports"
        );
        assert!(ckpt.run_step(&pk, &engines, MSM_STEPS, &NoopSink).is_err());
    }
}
