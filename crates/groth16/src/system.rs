//! [`ProofSystem`] implementation for Groth16: a thin static adapter
//! over the crate's existing split prover
//! ([`crate::prove::prove_poly`] / [`crate::prove::prove_msm`]) and
//! [`crate::checkpoint::ProofCheckpoint`], so the generic service-side
//! task types (`SystemTask<S>`, `CheckpointingTask<S>`) can schedule
//! Groth16 jobs without knowing anything Groth16-specific.
//!
//! The adapter adds no computation of its own: proofs produced through
//! this surface are byte-identical to calling the underlying functions
//! directly with `StdRng::seed_from_u64(seed)`.

use crate::batch::proof_to_bytes;
use crate::checkpoint::ProofCheckpoint;
use crate::prove::{prove_msm, prove_poly, PolyArtifacts};
use crate::r1cs::ConstraintSystem;
use crate::setup::{ProvingKey, VerifyingKey};
use crate::verify::verify_proof_bytes;
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{CoordField, CurveParams};
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_gpu_sim::StageReport;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_proof_system::{Engines, ProofSystem, ProofSystemKind, ProveReport};
use gzkp_telemetry::TelemetrySink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::marker::PhantomData;

/// Marker type selecting the Groth16 backend over curve family `P`.
pub struct Groth16System<P: PairingConfig>(PhantomData<P>);

impl<P: PairingConfig> ProofSystem for Groth16System<P>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    type Pairing = P;
    type Circuit = ConstraintSystem<P::Fr>;
    type ProvingKey = ProvingKey<P>;
    type VerifyingKey = VerifyingKey<P>;
    type PolyArtifacts = PolyArtifacts<P>;
    type Checkpoint = ProofCheckpoint<P>;

    const KIND: ProofSystemKind = ProofSystemKind::Groth16;

    fn total_msm_steps() -> usize {
        crate::checkpoint::MSM_STEPS
    }

    fn prove_poly(
        circuit: &Self::Circuit,
        pk: &Self::ProvingKey,
        ntt: &dyn GpuNttEngine<P::Fr>,
        sink: &dyn TelemetrySink,
    ) -> Result<Self::PolyArtifacts, String> {
        prove_poly::<P>(circuit, pk, ntt, sink).map_err(|e| format!("poly stage failed: {e:?}"))
    }

    fn poly_report(poly: &Self::PolyArtifacts) -> &StageReport {
        &poly.report
    }

    fn poly_scalar_bytes(poly: &Self::PolyArtifacts) -> u64 {
        poly.scalar_bytes()
    }

    fn prove_msm(
        pk: &Self::ProvingKey,
        engines: &Engines<'_, P>,
        poly: Self::PolyArtifacts,
        seed: u64,
        sink: &dyn TelemetrySink,
    ) -> Result<(Vec<u8>, ProveReport), String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (proof, report) = prove_msm::<P, _>(pk, engines, poly, &mut rng, sink);
        Ok((proof_to_bytes(&proof), report))
    }

    fn verify_bytes(vk: &Self::VerifyingKey, circuit: &Self::Circuit, proof: &[u8]) -> bool {
        verify_proof_bytes::<P>(vk, proof, &circuit.input_assignment)
    }

    fn witness_elems(circuit: &Self::Circuit) -> usize {
        circuit.num_variables()
    }

    fn poly_d2h_elems(pk: &Self::ProvingKey) -> usize {
        pk.h_query.len()
    }

    fn g1_msm_sizes(pk: &Self::ProvingKey) -> Vec<usize> {
        vec![
            pk.a_query.len(),
            pk.b_g1_query.len(),
            pk.h_query.len(),
            pk.l_query.len(),
        ]
    }

    fn g2_msm_sizes(pk: &Self::ProvingKey) -> Vec<usize> {
        vec![pk.b_g2_query.len()]
    }

    fn checkpoint_from_poly(seed: u64, poly: Self::PolyArtifacts) -> Self::Checkpoint {
        ProofCheckpoint::from_poly(seed, poly)
    }

    fn checkpoint_to_bytes(ckpt: &Self::Checkpoint) -> Vec<u8> {
        ckpt.to_bytes()
    }

    fn checkpoint_from_bytes(bytes: &[u8]) -> Result<Self::Checkpoint, String> {
        ProofCheckpoint::from_bytes(bytes)
    }

    fn checkpoint_seed(ckpt: &Self::Checkpoint) -> u64 {
        ckpt.seed
    }

    fn checkpoint_scalar_bytes(ckpt: &Self::Checkpoint) -> u64 {
        ckpt.scalar_bytes()
    }

    fn checkpoint_steps_done(ckpt: &Self::Checkpoint) -> usize {
        ckpt.steps_done()
    }

    fn checkpoint_next_step(ckpt: &Self::Checkpoint) -> Option<usize> {
        ckpt.next_step()
    }

    fn checkpoint_poly_report(ckpt: &Self::Checkpoint) -> StageReport {
        ckpt.poly_report().clone()
    }

    fn checkpoint_run_step(
        ckpt: &mut Self::Checkpoint,
        pk: &Self::ProvingKey,
        engines: &Engines<'_, P>,
        step: usize,
        sink: &dyn TelemetrySink,
    ) -> Result<(), String> {
        ckpt.run_step(pk, engines, step, sink)
    }

    fn checkpoint_finish(
        ckpt: Self::Checkpoint,
        pk: &Self::ProvingKey,
    ) -> Result<(Vec<u8>, ProveReport), String> {
        let mut rng = StdRng::seed_from_u64(ckpt.seed);
        let (proof, report) = ckpt.finish(pk, &mut rng)?;
        Ok((proof_to_bytes(&proof), report))
    }
}
