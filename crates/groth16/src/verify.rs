//! Groth16 verification: the pairing check
//! `e(A, B) = e(α, β) · e(Σ xᵢ·ICᵢ, γ) · e(C, δ)`,
//! evaluated as one multi-Miller loop with a single final exponentiation.

use crate::prove::Proof;
use crate::setup::VerifyingKey;
use gzkp_curves::pairing::{multi_pairing, PairingConfig};

use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_ff::Field;

/// Verifies a proof against public inputs.
///
/// Returns `true` iff the pairing equation holds. Runs in milliseconds
/// regardless of circuit size (the succinctness property of §2.1).
pub fn verify<P: PairingConfig>(
    vk: &VerifyingKey<P>,
    proof: &Proof<P>,
    public_inputs: &[<P as PairingConfig>::Fr],
) -> bool
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    if public_inputs.len() + 1 != vk.ic.len() {
        return false;
    }
    // Accumulate the public-input commitment Σ xᵢ·ICᵢ (IC₀ has weight 1).
    let mut acc = vk.ic[0].to_projective();
    for (x, ic) in public_inputs.iter().zip(&vk.ic[1..]) {
        acc = acc.add(&ic.mul(x));
    }
    let acc = acc.to_affine();

    // e(A, B) · e(−α, β) · e(−acc, γ) · e(−C, δ) == 1
    let result = multi_pairing::<P>(&[
        (proof.a, proof.b),
        (vk.alpha_g1.neg(), vk.beta_g2),
        (acc.neg(), vk.gamma_g2),
        (proof.c.neg(), vk.delta_g2),
    ]);
    result == gzkp_curves::pairing::Gt::<P>::one()
}

/// Verifies a serialized proof (the wire format of
/// [`crate::batch::proof_to_bytes`]) against public inputs.
///
/// This is the verify-before-return guard of the proving service: the
/// proof bytes about to be handed to a client are checked as-is, so a
/// silently corrupted limb anywhere between the kernel and the response
/// buffer fails here instead of at the client. Malformed bytes (wrong
/// length, non-canonical coordinates, point off the curve) return
/// `false` rather than panicking.
pub fn verify_proof_bytes<P: PairingConfig>(
    vk: &VerifyingKey<P>,
    proof_bytes: &[u8],
    public_inputs: &[<P as PairingConfig>::Fr],
) -> bool
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
    <P::G1 as gzkp_curves::CurveParams>::Base: gzkp_curves::serialize::CoordField,
    <P::G2 as gzkp_curves::CurveParams>::Base: gzkp_curves::serialize::CoordField,
{
    match crate::batch::proof_from_bytes::<P>(proof_bytes) {
        Some(proof) => verify(vk, &proof, public_inputs),
        None => false,
    }
}
