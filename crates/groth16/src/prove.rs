//! The Groth16 prover: the paper's two-stage pipeline — POLY (seven NTTs)
//! followed by five MSMs (a-query G1, b-query G1, b-query G2, h-query G1,
//! l-query G1) — with pluggable NTT and MSM engines so every paper
//! configuration (Best-CPU, BG, GZKP, ablations) runs through the same
//! code path.

use crate::qap::{poly_stage, poly_stage_traced, QapWitness};
use crate::r1cs::{ConstraintSystem, SynthesisError};
use crate::setup::ProvingKey;
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::Affine;
use gzkp_ff::Field;
use gzkp_gpu_sim::StageReport;
use gzkp_msm::ScalarVec;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_telemetry::{self as telemetry, NoopSink, TelemetrySink};
use rand::Rng;
use rayon::prelude::*;
use std::marker::PhantomData;

/// A Groth16 proof: two G1 points and one G2 point (<1 KB — the
/// succinctness property of §2.1).
#[derive(Debug, Clone)]
pub struct Proof<P: PairingConfig> {
    /// The `A` element.
    pub a: Affine<P::G1>,
    /// The `B` element.
    pub b: Affine<P::G2>,
    /// The `C` element.
    pub c: Affine<P::G1>,
}

impl<P: PairingConfig> PartialEq for Proof<P> {
    fn eq(&self, other: &Self) -> bool {
        self.a == other.a && self.b == other.b && self.c == other.c
    }
}
impl<P: PairingConfig> Eq for Proof<P> {}

/// Engine selection for the prover — the shared, backend-agnostic
/// [`gzkp_proof_system::Engines`] under its historical Groth16 name.
///
/// Single-device engines and the multi-device
/// `gzkp_runtime::CrossDeviceMsm` slot in interchangeably; because the
/// blinding factors `r, s` are drawn from the caller's RNG *after* the
/// five MSMs complete, identical engine results mean byte-identical
/// proofs regardless of placement. The `fleet_single_proof` bench and
/// the `cross_device_msm` proptests hold every engine to that contract.
pub use gzkp_proof_system::Engines as ProverEngines;

/// Timing record of one proof generation, split by the paper's two
/// stages (shared with every other backend through
/// `gzkp_proof_system`).
pub use gzkp_proof_system::ProveReport;

/// Generates a proof for the (satisfied, synthesized) constraint system.
///
/// # Errors
///
/// Fails when the system is unsatisfied or exceeds the NTT domain.
///
/// # Panics
///
/// Panics if the proving key does not match the constraint system shape.
pub fn prove<P: PairingConfig, R: Rng + ?Sized>(
    cs: &ConstraintSystem<P::Fr>,
    pk: &ProvingKey<P>,
    engines: &ProverEngines<'_, P>,
    rng: &mut R,
) -> Result<(Proof<P>, ProveReport), SynthesisError> {
    prove_with_telemetry(cs, pk, engines, rng, &NoopSink)
}

/// [`prove`] with structured telemetry: the run is wrapped in a `prove`
/// span containing a `poly` span (seven `ntt[i]` children) and an `msm`
/// span (`a`, `b_g1`, `b_g2`, `h`, `l` children), each carrying kernel
/// reports, counter rollups, and — for engines that expose them — bucket
/// statistics. With the default [`NoopSink`] every hook is a single
/// branch, so [`prove`] simply delegates here.
///
/// # Errors
///
/// Fails when the system is unsatisfied or exceeds the NTT domain.
///
/// # Panics
///
/// Panics if the proving key does not match the constraint system shape.
pub fn prove_with_telemetry<P: PairingConfig, R: Rng + ?Sized>(
    cs: &ConstraintSystem<P::Fr>,
    pk: &ProvingKey<P>,
    engines: &ProverEngines<'_, P>,
    rng: &mut R,
    sink: &dyn TelemetrySink,
) -> Result<(Proof<P>, ProveReport), SynthesisError> {
    let _prove_span = telemetry::span(sink, telemetry::counters::SPAN_PROVE);
    let poly = prove_poly(cs, pk, engines.ntt, sink)?;
    Ok(prove_msm(pk, engines, poly, rng, sink))
}

/// Output of the POLY stage, ready to feed the MSM stage: the simulated
/// POLY report plus the three packed scalar vectors (`z⃗`, aux, `h⃗`) the
/// five MSMs consume. Produced by [`prove_poly`], consumed by
/// [`prove_msm`] — splitting the prover at this boundary lets a scheduler
/// overlap proof *i+1*'s POLY with proof *i*'s MSM phase (the software
/// analogue of GZKP's GPU streams).
pub struct PolyArtifacts<P: PairingConfig> {
    /// POLY-stage simulated report (7 NTTs + pointwise kernels).
    pub report: StageReport,
    z_scalars: ScalarVec,
    aux_scalars: ScalarVec,
    h_scalars: ScalarVec,
    _curve: PhantomData<P>,
}

impl<P: PairingConfig> PolyArtifacts<P> {
    /// Bytes of packed scalars the MSM stage uploads to the device (the
    /// three vectors feeding the five MSMs; `z⃗` is consumed by three of
    /// them but transferred once). This is the stage's H2D footprint for
    /// transfer-pipelining schedulers.
    pub fn scalar_bytes(&self) -> u64 {
        [&self.z_scalars, &self.aux_scalars, &self.h_scalars]
            .iter()
            .map(|v| (v.len() * v.limbs_per_scalar() * 8) as u64)
            .sum()
    }

    /// Decomposes into `(report, z⃗, aux, h⃗)` — the checkpoint-extraction
    /// surface: [`crate::checkpoint::ProofCheckpoint`] serializes these
    /// parts so an interrupted job can resume its MSM stage on a
    /// different host. Inverse of [`PolyArtifacts::from_parts`].
    pub fn into_parts(self) -> (StageReport, ScalarVec, ScalarVec, ScalarVec) {
        (
            self.report,
            self.z_scalars,
            self.aux_scalars,
            self.h_scalars,
        )
    }

    /// Rebuilds artifacts from checkpointed parts. The caller is
    /// responsible for the vectors matching the proving key the MSM
    /// stage will run under ([`prove_msm`] asserts the shapes).
    pub fn from_parts(
        report: StageReport,
        z_scalars: ScalarVec,
        aux_scalars: ScalarVec,
        h_scalars: ScalarVec,
    ) -> Self {
        Self {
            report,
            z_scalars,
            aux_scalars,
            h_scalars,
            _curve: PhantomData,
        }
    }
}

/// Stage 1 of the prover: checks satisfiability, reduces R1CS → QAP, runs
/// the seven-NTT POLY stage (inside a `poly` span on `sink`), and packs
/// the MSM scalar vectors.
///
/// # Errors
///
/// Fails when the system is unsatisfied or exceeds the NTT domain.
///
/// # Panics
///
/// Panics if the proving key does not match the constraint system shape.
pub fn prove_poly<P: PairingConfig>(
    cs: &ConstraintSystem<P::Fr>,
    pk: &ProvingKey<P>,
    ntt: &dyn GpuNttEngine<P::Fr>,
    sink: &dyn TelemetrySink,
) -> Result<PolyArtifacts<P>, SynthesisError> {
    cs.is_satisfied()?;
    assert_eq!(pk.a_query.len(), cs.num_variables(), "key/circuit mismatch");

    // --- POLY stage: h = (A·B − C)/Z through seven NTTs (§5.2). ---
    let qap = QapWitness::from_r1cs(cs)?;
    assert_eq!(pk.domain_size, qap.domain.size, "key domain mismatch");
    let poly = {
        let _poly_span = telemetry::span(sink, telemetry::counters::SPAN_POLY);
        poly_stage_traced(&qap, ntt, sink)
    };

    let z = cs.full_assignment();
    Ok(PolyArtifacts {
        z_scalars: ScalarVec::from_field(&z),
        aux_scalars: ScalarVec::from_field(&cs.aux_assignment),
        h_scalars: ScalarVec::from_field(&poly.h[..pk.h_query.len()]),
        report: poly.report,
        _curve: PhantomData,
    })
}

/// Stage 2 of the prover: the five MSMs (inside an `msm` span on `sink`),
/// blinding, and proof assembly. The blinding factors `r`, `s` are drawn
/// from `rng` *after* the MSMs — the same order as the monolithic
/// [`prove`] — so a fixed seed yields bit-identical proofs through either
/// path.
pub fn prove_msm<P: PairingConfig, R: Rng + ?Sized>(
    pk: &ProvingKey<P>,
    engines: &ProverEngines<'_, P>,
    poly: PolyArtifacts<P>,
    rng: &mut R,
    sink: &dyn TelemetrySink,
) -> (Proof<P>, ProveReport) {
    let PolyArtifacts {
        report: poly_report,
        z_scalars,
        aux_scalars,
        h_scalars,
        _curve,
    } = poly;

    let _msm_span = telemetry::span(sink, telemetry::counters::SPAN_MSM);
    let mut msm_report = StageReport::new("MSM");

    // The five MSMs are independent once POLY finishes, so they execute
    // concurrently; the span tree and kernel-report order stay exactly
    // as in the sequential prover because telemetry is emitted after
    // the join (the recorder tracks a single span path). Each MSM's
    // internal parallelism self-serializes when nested, so the thread
    // pool is shared rather than oversubscribed.
    let g1_jobs: [(&[Affine<P::G1>], &ScalarVec); 4] = [
        (&pk.a_query, &z_scalars),
        (&pk.b_g1_query, &z_scalars),
        (&pk.h_query, &h_scalars),
        (&pk.l_query, &aux_scalars),
    ];
    enum MsmOut<P: PairingConfig> {
        G1(gzkp_msm::MsmRun<P::G1>),
        G2(gzkp_msm::MsmRun<P::G2>),
    }
    let mut outs: Vec<MsmOut<P>> = (0..5usize)
        .into_par_iter()
        .map(|j| {
            if j < 4 {
                let (points, scalars) = g1_jobs[j];
                MsmOut::G1(engines.msm_g1.msm(points, scalars))
            } else {
                MsmOut::G2(engines.msm_g2.msm(&pk.b_g2_query, &z_scalars))
            }
        })
        .collect();

    let b_g2_run = match outs.pop() {
        Some(MsmOut::G2(run)) => run,
        _ => unreachable!("fifth job is the G2 MSM"),
    };
    let mut take = |run: gzkp_msm::MsmRun<P::G1>, label: &str| {
        for mut k in run.report.kernels {
            k.name = format!("{label}.{}", k.name);
            msm_report.kernels.push(k);
        }
        run.result
    };
    // Span names come from the telemetry registry's per-backend stage
    // table; kernel-report labels keep the historical query names.
    let stage_spans = telemetry::counters::GROTH16_MSM_STAGES;
    let spans = [
        (stage_spans[0], "a_query"),
        (stage_spans[1], "b_g1"),
        (stage_spans[2], "h_query"),
        (stage_spans[3], "l_query"),
    ];
    let mut g1_sums = Vec::with_capacity(4);
    for (out, (span, label)) in outs.into_iter().zip(spans) {
        let MsmOut::G1(run) = out else {
            unreachable!("first four jobs are G1 MSMs")
        };
        let (points, scalars) = g1_jobs[g1_sums.len()];
        {
            let _span = telemetry::span(sink, span);
            engines
                .msm_g1
                .emit_msm_telemetry(points, scalars, &run, sink);
        }
        g1_sums.push(take(run, label));
    }
    let [a_sum, b_g1_sum, h_sum, l_sum] = g1_sums[..] else {
        unreachable!("four G1 sums")
    };
    {
        let _g2_span = telemetry::span(sink, stage_spans[4]);
        engines
            .msm_g2
            .emit_msm_telemetry(&pk.b_g2_query, &z_scalars, &b_g2_run, sink);
    }
    for mut k in b_g2_run.report.kernels {
        k.name = format!("b_g2.{}", k.name);
        msm_report.kernels.push(k);
    }
    let b_g2_sum = b_g2_run.result;
    drop(_msm_span);

    // Blinding factors (zero-knowledge).
    let r = P::Fr::random(rng);
    let s = P::Fr::random(rng);

    // A = α + Σ z·a_query + r·δ
    let a = a_sum.add_mixed(&pk.alpha_g1).add(&pk.delta_g1.mul(&r));
    // B = β + Σ z·b_query + s·δ (in G2; and its G1 shadow for C)
    let b_g2 = b_g2_sum.add_mixed(&pk.beta_g2).add(&pk.delta_g2.mul(&s));
    let b_g1 = b_g1_sum.add_mixed(&pk.beta_g1).add(&pk.delta_g1.mul(&s));
    // C = Σ_aux z·l_query + Σ h·h_query + s·A + r·B₁ − r·s·δ
    let c = l_sum
        .add(&h_sum)
        .add(&a.mul(&s))
        .add(&b_g1.mul(&r))
        .add(&pk.delta_g1.mul(&(r * s)).neg());

    (
        Proof {
            a: a.to_affine(),
            b: b_g2.to_affine(),
            c: c.to_affine(),
        },
        ProveReport {
            poly: poly_report,
            msm: msm_report,
        },
    )
}

/// Cost-only proof-generation plan: runs the POLY stage functionally (it
/// is cheap) but prices the five MSMs from the actual scalar digit
/// distributions without performing curve arithmetic. This is what the
/// Table 2/3/4 harnesses use at paper-scale vector sizes.
pub fn prove_plan<P: PairingConfig>(
    cs: &ConstraintSystem<P::Fr>,
    engines: &ProverEngines<'_, P>,
) -> Result<ProveReport, SynthesisError> {
    let qap = QapWitness::from_r1cs(cs)?;
    let poly = poly_stage(&qap, engines.ntt);

    let z = cs.full_assignment();
    let z_scalars = ScalarVec::from_field(&z);
    let aux_scalars = ScalarVec::from_field(&cs.aux_assignment);
    let h_scalars = ScalarVec::from_field(&poly.h[..qap.domain.size - 1]);

    let mut msm_report = StageReport::new("MSM");
    let mut take = |rep: StageReport, label: &str| {
        for mut k in rep.kernels {
            k.name = format!("{label}.{}", k.name);
            msm_report.kernels.push(k);
        }
    };
    take(engines.msm_g1.plan(&z_scalars), "a_query");
    take(engines.msm_g1.plan(&z_scalars), "b_g1");
    take(engines.msm_g1.plan(&h_scalars), "h_query");
    take(engines.msm_g1.plan(&aux_scalars), "l_query");
    take(engines.msm_g2.plan(&z_scalars), "b_g2");

    Ok(ProveReport {
        poly: poly.report,
        msm: msm_report,
    })
}
