//! Groth16 trusted setup: samples the toxic waste `(τ, α, β, γ, δ)` and
//! produces the proving key (the point vectors `M⃗, Q⃗` of the paper's
//! Figure 1) and the short verification key.

use crate::r1cs::{ConstraintSystem, SynthesisError};
use gzkp_curves::group::batch_to_affine;
use gzkp_curves::pairing::PairingConfig;
use gzkp_curves::{Affine, Projective};
use gzkp_ff::{batch_inverse, Field, PrimeField};
use gzkp_ntt::Radix2Domain;
use rand::Rng;

/// The Groth16 proving key for pairing config `P`.
#[derive(Debug, Clone)]
pub struct ProvingKey<P: PairingConfig> {
    /// `α` in G1.
    pub alpha_g1: Affine<P::G1>,
    /// `β` in G1 and G2.
    pub beta_g1: Affine<P::G1>,
    /// `β` in G2.
    pub beta_g2: Affine<P::G2>,
    /// `δ` in G1 and G2.
    pub delta_g1: Affine<P::G1>,
    /// `δ` in G2.
    pub delta_g2: Affine<P::G2>,
    /// `A_j(τ)·G1` for every variable `j` (the a-query MSM basis).
    pub a_query: Vec<Affine<P::G1>>,
    /// `B_j(τ)·G1`.
    pub b_g1_query: Vec<Affine<P::G1>>,
    /// `B_j(τ)·G2`.
    pub b_g2_query: Vec<Affine<P::G2>>,
    /// `(β·A_j(τ) + α·B_j(τ) + C_j(τ))/δ · G1` for private variables.
    pub l_query: Vec<Affine<P::G1>>,
    /// `τ^i·Z(τ)/δ · G1` for `i < N − 1` (the h-query MSM basis).
    pub h_query: Vec<Affine<P::G1>>,
    /// Domain size used at setup (the prover must match it).
    pub domain_size: usize,
}

/// The Groth16 verification key.
#[derive(Debug, Clone)]
pub struct VerifyingKey<P: PairingConfig> {
    /// `α` in G1.
    pub alpha_g1: Affine<P::G1>,
    /// `β` in G2.
    pub beta_g2: Affine<P::G2>,
    /// `γ` in G2.
    pub gamma_g2: Affine<P::G2>,
    /// `δ` in G2.
    pub delta_g2: Affine<P::G2>,
    /// `(β·A_j(τ) + α·B_j(τ) + C_j(τ))/γ · G1` for the constant one and
    /// each public input.
    pub ic: Vec<Affine<P::G1>>,
}

/// Evaluates all Lagrange basis polynomials of the domain at `τ`:
/// `L_i(τ) = Z(τ)·ωⁱ / (N·(τ − ωⁱ))`.
fn lagrange_at_tau<F: PrimeField>(domain: &Radix2Domain<F>, tau: F) -> Vec<F> {
    let z_tau = domain.eval_vanishing(tau);
    let mut omega_i = F::one();
    let mut denoms: Vec<F> = (0..domain.size)
        .map(|_| {
            let d = tau - omega_i;
            omega_i *= domain.omega;
            d
        })
        .collect();
    batch_inverse(&mut denoms);
    let n_inv = domain.size_inv;
    let mut omega_i = F::one();
    denoms
        .into_iter()
        .map(|dinv| {
            let l = z_tau * omega_i * n_inv * dinv;
            omega_i *= domain.omega;
            l
        })
        .collect()
}

/// Runs the trusted setup over a synthesized constraint system.
///
/// # Errors
///
/// Fails if the constraint count exceeds the scalar field's NTT capacity.
pub fn setup<P: PairingConfig, R: Rng + ?Sized>(
    cs: &ConstraintSystem<P::Fr>,
    rng: &mut R,
) -> Result<(ProvingKey<P>, VerifyingKey<P>), SynthesisError> {
    let domain = Radix2Domain::<P::Fr>::at_least(cs.num_constraints().max(2))
        .ok_or(SynthesisError::DomainTooLarge)?;
    let tau = P::Fr::random(rng);
    let alpha = P::Fr::random(rng);
    let beta = P::Fr::random(rng);
    let gamma = P::Fr::random(rng);
    let delta = P::Fr::random(rng);

    // Per-variable QAP polynomial evaluations at τ via the Lagrange basis.
    let lag = lagrange_at_tau(&domain, tau);
    let nvars = cs.num_variables();
    let mut a_tau = vec![P::Fr::zero(); nvars];
    let mut b_tau = vec![P::Fr::zero(); nvars];
    let mut c_tau = vec![P::Fr::zero(); nvars];
    for (i, (la, lb, lc)) in cs.constraints.iter().enumerate() {
        for (j, coeff) in &la.terms {
            a_tau[*j] += *coeff * lag[i];
        }
        for (j, coeff) in &lb.terms {
            b_tau[*j] += *coeff * lag[i];
        }
        for (j, coeff) in &lc.terms {
            c_tau[*j] += *coeff * lag[i];
        }
    }

    let g1 = Projective::<P::G1>::generator();
    let g2 = Projective::<P::G2>::generator();
    let gamma_inv = gamma.inverse().expect("gamma nonzero");
    let delta_inv = delta.inverse().expect("delta nonzero");

    let num_public = 1 + cs.num_inputs;
    let ic: Vec<_> = (0..num_public)
        .map(|j| g1.mul(&((beta * a_tau[j] + alpha * b_tau[j] + c_tau[j]) * gamma_inv)))
        .collect();
    let l_query: Vec<_> = (num_public..nvars)
        .map(|j| g1.mul(&((beta * a_tau[j] + alpha * b_tau[j] + c_tau[j]) * delta_inv)))
        .collect();
    let a_query: Vec<_> = a_tau.iter().map(|v| g1.mul(v)).collect();
    let b_g1_query: Vec<_> = b_tau.iter().map(|v| g1.mul(v)).collect();
    let b_g2_query: Vec<_> = b_tau.iter().map(|v| g2.mul(v)).collect();

    // h-query: τ^i · Z(τ) / δ in G1, for i < N − 1.
    let z_tau = domain.eval_vanishing(tau);
    let mut h_query = Vec::with_capacity(domain.size - 1);
    let mut tpow = z_tau * delta_inv;
    for _ in 0..domain.size - 1 {
        h_query.push(g1.mul(&tpow));
        tpow *= tau;
    }

    let pk = ProvingKey {
        alpha_g1: g1.mul(&alpha).to_affine(),
        beta_g1: g1.mul(&beta).to_affine(),
        beta_g2: g2.mul(&beta).to_affine(),
        delta_g1: g1.mul(&delta).to_affine(),
        delta_g2: g2.mul(&delta).to_affine(),
        a_query: batch_to_affine(&a_query),
        b_g1_query: batch_to_affine(&b_g1_query),
        b_g2_query: batch_to_affine(&b_g2_query),
        l_query: batch_to_affine(&l_query),
        h_query: batch_to_affine(&h_query),
        domain_size: domain.size,
    };
    let vk = VerifyingKey {
        alpha_g1: pk.alpha_g1,
        beta_g2: pk.beta_g2,
        gamma_g2: g2.mul(&gamma).to_affine(),
        delta_g2: pk.delta_g2,
        ic: batch_to_affine(&ic),
    };
    Ok((pk, vk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::LinearCombination;
    use gzkp_curves::bn254::{Bn254, Fr};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lagrange_partition_of_unity() {
        // Σ L_i(τ) = 1 and L_i(ω^j) = δ_ij.
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let tau = Fr::random(&mut rng);
        let lag = lagrange_at_tau(&d, tau);
        let sum: Fr = lag.iter().copied().sum();
        assert_eq!(sum, Fr::one());
    }

    #[test]
    fn lagrange_interpolates() {
        // Σ f(ωⁱ)·L_i(τ) must equal f(τ) for a low-degree f.
        let d = Radix2Domain::<Fr>::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let tau = Fr::random(&mut rng);
        let lag = lagrange_at_tau(&d, tau);
        // f(x) = 3x² + 2x + 5
        let f = |x: Fr| Fr::from_u64(3) * x.square() + Fr::from_u64(2) * x + Fr::from_u64(5);
        let mut w = Fr::one();
        let mut acc = Fr::zero();
        for l in &lag {
            acc += f(w) * *l;
            w *= d.omega;
        }
        assert_eq!(acc, f(tau));
    }

    #[test]
    fn setup_produces_consistent_sizes() {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_input(Fr::from_u64(6));
        let x = cs.alloc(Fr::from_u64(2));
        let y = cs.alloc(Fr::from_u64(3));
        cs.enforce(
            LinearCombination::from_var(x),
            LinearCombination::from_var(y),
            LinearCombination::from_var(out),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
        assert_eq!(pk.a_query.len(), cs.num_variables());
        assert_eq!(pk.b_g2_query.len(), cs.num_variables());
        assert_eq!(pk.l_query.len(), cs.num_aux);
        assert_eq!(pk.h_query.len(), pk.domain_size - 1);
        assert_eq!(vk.ic.len(), 1 + cs.num_inputs);
    }
}
