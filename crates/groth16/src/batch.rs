//! Verification accelerators: prepared verification keys (caching the
//! statement-independent pairing `e(α, β)`), randomized batch
//! verification of many proofs, and the compressed proof wire format.
//!
//! These are the verifier-side counterparts of the paper's prover focus:
//! a chain node verifying a block of shielded transactions checks many
//! Groth16 proofs against the same key, and the batched equation trades
//! `4n` Miller loops for `3n + 1`-ish work with one final exponentiation.

use crate::prove::Proof;
use crate::setup::VerifyingKey;
use gzkp_curves::pairing::{final_exponentiation, miller_loop, Gt, PairingConfig};
use gzkp_curves::serialize::{compress, decompress, CoordField};
use gzkp_curves::{CurveParams, Projective};
use gzkp_ff::ext::{Fp12Config, Fp2Config, Fp6Config};
use gzkp_ff::{Field, PrimeField};
use rand::Rng;

/// A verification key with the statement-independent work done once.
#[derive(Debug, Clone)]
pub struct PreparedVerifyingKey<P: PairingConfig> {
    /// The underlying key.
    pub vk: VerifyingKey<P>,
    /// Cached `e(α, β)` (skips one Miller loop per verification).
    pub alpha_beta: Gt<P>,
}

impl<P: PairingConfig> PreparedVerifyingKey<P>
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    /// Prepares a verification key.
    pub fn new(vk: VerifyingKey<P>) -> Self {
        let alpha_beta = final_exponentiation::<P>(&miller_loop::<P>(&vk.alpha_g1, &vk.beta_g2));
        Self { vk, alpha_beta }
    }

    /// Verifies one proof using the cached `e(α, β)`:
    /// checks `e(A,B) · e(−acc, γ) · e(−C, δ) == e(α, β)`.
    pub fn verify(&self, proof: &Proof<P>, public_inputs: &[P::Fr]) -> bool {
        if public_inputs.len() + 1 != self.vk.ic.len() {
            return false;
        }
        let mut acc = self.vk.ic[0].to_projective();
        for (x, ic) in public_inputs.iter().zip(&self.vk.ic[1..]) {
            acc = acc.add(&ic.mul(x));
        }
        let f = miller_loop::<P>(&proof.a, &proof.b)
            * miller_loop::<P>(&acc.to_affine().neg(), &self.vk.gamma_g2)
            * miller_loop::<P>(&proof.c.neg(), &self.vk.delta_g2);
        final_exponentiation::<P>(&f) == self.alpha_beta
    }
}

/// Randomized batch verification: checks `n` (proof, inputs) pairs with
/// one combined pairing product. Each proof is scaled by an independent
/// random coefficient so a single invalid proof fails the batch except
/// with probability `~1/r`.
///
/// Returns `true` iff (w.h.p.) **all** proofs verify. An empty batch is
/// vacuously valid.
pub fn batch_verify<P: PairingConfig, R: Rng + ?Sized>(
    vk: &VerifyingKey<P>,
    items: &[(Proof<P>, Vec<P::Fr>)],
    rng: &mut R,
) -> bool
where
    <P::Fq12C as Fp12Config>::Fp6C: Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: Fp2Config,
{
    if items.is_empty() {
        return true;
    }
    // Random 126-bit coefficients (r_0 = 1 is fine and saves a scaling).
    let coeffs: Vec<P::Fr> = std::iter::once(P::Fr::one())
        .chain((1..items.len()).map(|_| {
            P::Fr::from_limbs(&[rng.gen(), rng.gen::<u64>() >> 2, 0, 0][..P::Fr::NUM_LIMBS.min(4)])
                .unwrap_or_else(P::Fr::one)
        }))
        .collect();

    // Σ rᵢ·e(Aᵢ, Bᵢ) = e(α,β)^{Σrᵢ} · e(Σ rᵢ·accᵢ, γ) · e(Σ rᵢ·Cᵢ, δ)
    let mut f = Gt::<P>::one();
    let mut acc_sum = Projective::<P::G1>::identity();
    let mut c_sum = Projective::<P::G1>::identity();
    let mut alpha_scale = P::Fr::zero();
    for ((proof, inputs), r) in items.iter().zip(&coeffs) {
        if inputs.len() + 1 != vk.ic.len() {
            return false;
        }
        let mut acc = vk.ic[0].to_projective();
        for (x, ic) in inputs.iter().zip(&vk.ic[1..]) {
            acc = acc.add(&ic.mul(x));
        }
        // e(A,B)^r = e(r·A, B).
        let ra = proof.a.mul(r).to_affine();
        f *= miller_loop::<P>(&ra, &proof.b);
        acc_sum = acc_sum.add(&acc.mul(r));
        c_sum = c_sum.add(&proof.c.mul(r));
        alpha_scale += *r;
    }
    let alpha_side = Projective::<P::G1>::from_affine_mul(&vk.alpha_g1, &alpha_scale);
    f *= miller_loop::<P>(&alpha_side.to_affine().neg(), &vk.beta_g2);
    f *= miller_loop::<P>(&acc_sum.to_affine().neg(), &vk.gamma_g2);
    f *= miller_loop::<P>(&c_sum.to_affine().neg(), &vk.delta_g2);
    final_exponentiation::<P>(&f) == Gt::<P>::one()
}

// Small helper so batch_verify reads cleanly.
trait FromAffineMul<C: CurveParams> {
    fn from_affine_mul(p: &gzkp_curves::Affine<C>, s: &C::Scalar) -> Projective<C>;
}
impl<C: CurveParams> FromAffineMul<C> for Projective<C> {
    fn from_affine_mul(p: &gzkp_curves::Affine<C>, s: &C::Scalar) -> Projective<C> {
        p.mul(s)
    }
}

/// Compressed proof encoding: `A ‖ B ‖ C`, each point x-coordinate plus a
/// flag byte (see [`gzkp_curves::serialize`]). Under 1 KB on every curve.
pub fn proof_to_bytes<P: PairingConfig>(proof: &Proof<P>) -> Vec<u8>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
{
    let mut out = compress(&proof.a);
    out.extend(compress(&proof.b));
    out.extend(compress(&proof.c));
    out
}

/// Decodes a compressed proof; `None` on any malformed component.
pub fn proof_from_bytes<P: PairingConfig>(bytes: &[u8]) -> Option<Proof<P>>
where
    <P::G1 as CurveParams>::Base: CoordField,
    <P::G2 as CurveParams>::Base: CoordField,
{
    let g1_len = 1 + <P::G1 as CurveParams>::Base::encoded_len();
    let g2_len = 1 + <P::G2 as CurveParams>::Base::encoded_len();
    if bytes.len() != 2 * g1_len + g2_len {
        return None;
    }
    let a = decompress::<P::G1>(&bytes[..g1_len])?;
    let b = decompress::<P::G2>(&bytes[g1_len..g1_len + g2_len])?;
    let c = decompress::<P::G1>(&bytes[g1_len + g2_len..])?;
    Some(Proof { a, b, c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::{ConstraintSystem, LinearCombination};
    use crate::{prove, setup, verify, ProverEngines};
    use gzkp_curves::bn254::{Bn254, Fr};
    use gzkp_gpu_sim::v100;
    use gzkp_msm::GzkpMsm;
    use gzkp_ntt::GzkpNtt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type ProofBatch = Vec<(Proof<Bn254>, Vec<Fr>)>;

    fn make_proofs(n: usize, seed: u64) -> (VerifyingKey<Bn254>, ProofBatch) {
        let mut rng = StdRng::seed_from_u64(seed);
        // One circuit (x·y = out), different statements per proof.
        let ntt = GzkpNtt::auto::<Fr>(v100());
        let msm1 = GzkpMsm::new(v100());
        let msm2 = GzkpMsm::new(v100());
        let engines = ProverEngines::<Bn254> {
            ntt: &ntt,
            msm_g1: &msm1,
            msm_g2: &msm2,
        };
        // Setup once with a template circuit (the key depends on structure,
        // not the assignment).
        let template = circuit(3, 4);
        let (pk, vk) = setup::<Bn254, _>(&template, &mut rng).unwrap();
        let mut out = Vec::new();
        for i in 0..n {
            let (a, b) = (3 + i as u64, 5 + i as u64);
            let cs = circuit(a, b);
            let (proof, _) = prove(&cs, &pk, &engines, &mut rng).unwrap();
            out.push((proof, vec![Fr::from_u64(a * b)]));
        }
        (vk, out)
    }

    fn circuit(a: u64, b: u64) -> ConstraintSystem<Fr> {
        let mut cs = ConstraintSystem::<Fr>::new();
        let out = cs.alloc_input(Fr::from_u64(a * b));
        let x = cs.alloc(Fr::from_u64(a));
        let y = cs.alloc(Fr::from_u64(b));
        cs.enforce(
            LinearCombination::from_var(x),
            LinearCombination::from_var(y),
            LinearCombination::from_var(out),
        );
        cs
    }

    #[test]
    fn prepared_vk_matches_plain_verify() {
        let (vk, items) = make_proofs(2, 1);
        let pvk = PreparedVerifyingKey::new(vk.clone());
        for (proof, inputs) in &items {
            assert_eq!(
                pvk.verify(proof, inputs),
                verify::<Bn254>(&vk, proof, inputs)
            );
            assert!(pvk.verify(proof, inputs));
            assert!(!pvk.verify(proof, &[inputs[0] + Fr::one()]));
        }
    }

    #[test]
    fn batch_verify_accepts_valid_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let (vk, items) = make_proofs(3, 3);
        assert!(batch_verify::<Bn254, _>(&vk, &items, &mut rng));
        assert!(batch_verify::<Bn254, _>(&vk, &[], &mut rng));
    }

    #[test]
    fn batch_verify_rejects_one_bad_proof() {
        let mut rng = StdRng::seed_from_u64(4);
        let (vk, mut items) = make_proofs(3, 5);
        items[1].1[0] += Fr::one(); // corrupt one statement
        assert!(!batch_verify::<Bn254, _>(&vk, &items, &mut rng));
        let (_, mut items2) = make_proofs(2, 6);
        items2[0].0.c = items2[0].0.c.neg(); // corrupt one proof point
        assert!(!batch_verify::<Bn254, _>(&vk, &items2, &mut rng));
    }

    #[test]
    fn proof_bytes_roundtrip_under_1kb() {
        let (vk, items) = make_proofs(1, 7);
        let (proof, inputs) = &items[0];
        let bytes = proof_to_bytes::<Bn254>(proof);
        assert!(bytes.len() < 1024, "proof is {} bytes", bytes.len());
        let back = proof_from_bytes::<Bn254>(&bytes).unwrap();
        assert_eq!(&back, proof);
        assert!(verify::<Bn254>(&vk, &back, inputs));
        // Truncated input fails cleanly.
        assert!(proof_from_bytes::<Bn254>(&bytes[..bytes.len() - 1]).is_none());
    }
}
