//! Reusable circuit gadgets: booleans, range checks, a MiMC-style hash and
//! Merkle-path membership — enough to build the honest end-to-end example
//! workloads (the paper's applications are heavy with exactly these
//! bound-check / range-constraint gadgets, which is where the sparse 0/1
//! scalars of §4.2 come from).

use crate::r1cs::{ConstraintSystem, LinearCombination, SynthesisError, Variable};
use gzkp_ff::PrimeField;

/// Allocates a boolean witness: enforces `b · (1 − b) = 0`.
pub fn alloc_boolean<F: PrimeField>(cs: &mut ConstraintSystem<F>, value: bool) -> Variable {
    let v = cs.alloc(if value { F::one() } else { F::zero() });
    let lc_b = LinearCombination::from_var(v);
    let one_minus_b = LinearCombination::from_const(F::one()).add_term(v, -F::one());
    cs.enforce(lc_b, one_minus_b, LinearCombination::zero());
    v
}

/// Range-checks a witness to `bits` bits by full bit decomposition;
/// returns the bit variables (LSB first). This is the gadget responsible
/// for most of the 0/1 witness values in real workloads.
pub fn alloc_ranged<F: PrimeField>(
    cs: &mut ConstraintSystem<F>,
    value: u64,
    bits: u32,
) -> (Variable, Vec<Variable>) {
    assert!(bits <= 64);
    let v = cs.alloc(F::from_u64(value));
    let mut bit_vars = Vec::with_capacity(bits as usize);
    let mut recompose = LinearCombination::zero();
    for i in 0..bits {
        let bit = (value >> i) & 1 == 1;
        let b = alloc_boolean(cs, bit);
        recompose = recompose.add_term(b, F::from_u64(1u64 << i));
        bit_vars.push(b);
    }
    // Σ bᵢ·2ⁱ = v
    cs.enforce(
        recompose,
        LinearCombination::from_const(F::one()),
        LinearCombination::from_var(v),
    );
    (v, bit_vars)
}

/// Number of rounds of the MiMC permutation gadget.
pub const MIMC_ROUNDS: usize = 91;

/// Deterministic round constants (a fixed LCG keyed by the round index —
/// nothing-up-my-sleeve is not required for a reproduction workload).
pub fn mimc_constants<F: PrimeField>() -> Vec<F> {
    let mut state = 0x5f3759df_u64;
    (0..MIMC_ROUNDS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            F::from_u64(state)
        })
        .collect()
}

/// Plain (out-of-circuit) MiMC-like permutation `x ↦ (((x+c₀)³+c₁)³…)`,
/// used to compute witnesses and expected public values.
pub fn mimc_hash<F: PrimeField>(mut x: F, key: F, constants: &[F]) -> F {
    for c in constants {
        let t = x + key + *c;
        x = t.square() * t;
    }
    x + key
}

/// In-circuit MiMC: two constraints per round (square, then cube).
/// Returns the output variable.
pub fn mimc_gadget<F: PrimeField>(
    cs: &mut ConstraintSystem<F>,
    mut x_var: Variable,
    mut x_val: F,
    key_var: Variable,
    key_val: F,
    constants: &[F],
) -> (Variable, F) {
    for c in constants {
        let t_val = x_val + key_val + *c;
        // t = x + key + c (linear, folded into the enforcement LCs)
        let t_lc = LinearCombination::from_var(x_var)
            .add_term(key_var, F::one())
            .add_term(Variable::ONE, *c);
        // s = t²
        let s_val = t_val.square();
        let s_var = cs.alloc(s_val);
        cs.enforce(
            t_lc.clone(),
            t_lc.clone(),
            LinearCombination::from_var(s_var),
        );
        // y = s·t
        let y_val = s_val * t_val;
        let y_var = cs.alloc(y_val);
        cs.enforce(
            LinearCombination::from_var(s_var),
            t_lc,
            LinearCombination::from_var(y_var),
        );
        x_var = y_var;
        x_val = y_val;
    }
    // output = x + key
    let out_val = x_val + key_val;
    let out_var = cs.alloc(out_val);
    cs.enforce(
        LinearCombination::from_var(x_var).add_term(key_var, F::one()),
        LinearCombination::from_const(F::one()),
        LinearCombination::from_var(out_var),
    );
    (out_var, out_val)
}

/// Two-to-one compression for Merkle trees: `H(l, r) = MiMC(l + 3r; key=0)`.
/// A toy binding (documented as such) — sufficient for a reproduction
/// workload; swap in a sponge for production use.
pub fn mimc_compress<F: PrimeField>(l: F, r: F, constants: &[F]) -> F {
    mimc_hash(l + r.double() + r, F::zero(), constants)
}

/// In-circuit counterpart of [`mimc_compress`].
pub fn mimc_compress_gadget<F: PrimeField>(
    cs: &mut ConstraintSystem<F>,
    l: (Variable, F),
    r: (Variable, F),
    constants: &[F],
) -> (Variable, F) {
    let in_val = l.1 + r.1.double() + r.1;
    let in_var = cs.alloc(in_val);
    cs.enforce(
        LinearCombination::from_var(l.0).add_term(r.0, F::from_u64(3)),
        LinearCombination::from_const(F::one()),
        LinearCombination::from_var(in_var),
    );
    let zero_key = cs.alloc(F::zero());
    cs.enforce(
        LinearCombination::from_var(zero_key),
        LinearCombination::from_const(F::one()),
        LinearCombination::zero(),
    );
    mimc_gadget(cs, in_var, in_val, zero_key, F::zero(), constants)
}

/// A Merkle membership circuit: proves knowledge of a leaf and
/// authentication path hashing to a public root.
#[derive(Debug, Clone)]
pub struct MerkleMembership<F: PrimeField> {
    /// The secret leaf value.
    pub leaf: F,
    /// Sibling hashes from leaf level to the root.
    pub path: Vec<F>,
    /// Direction bits: true = current node is the right child.
    pub directions: Vec<bool>,
    /// The public root.
    pub root: F,
}

impl<F: PrimeField> MerkleMembership<F> {
    /// Computes the root for a leaf/path outside the circuit.
    pub fn compute_root(leaf: F, path: &[F], directions: &[bool], constants: &[F]) -> F {
        let mut acc = leaf;
        for (sib, dir) in path.iter().zip(directions) {
            acc = if *dir {
                mimc_compress(*sib, acc, constants)
            } else {
                mimc_compress(acc, *sib, constants)
            };
        }
        acc
    }
}

impl<F: PrimeField> crate::r1cs::Circuit<F> for MerkleMembership<F> {
    fn synthesize(&self, cs: &mut ConstraintSystem<F>) -> Result<(), SynthesisError> {
        let constants = mimc_constants::<F>();
        let root_var = cs.alloc_input(self.root);
        let mut acc = (cs.alloc(self.leaf), self.leaf);
        for (sib, dir) in self.path.iter().zip(&self.directions) {
            let sib_var = cs.alloc(*sib);
            let d = alloc_boolean(cs, *dir);
            // left = dir ? sib : acc; right = dir ? acc : sib — selected with
            // one multiplexer constraint each: left = acc + d·(sib − acc).
            let left_val = if *dir { *sib } else { acc.1 };
            let right_val = if *dir { acc.1 } else { *sib };
            let left_var = cs.alloc(left_val);
            let right_var = cs.alloc(right_val);
            // d·(sib − acc) = left − acc
            cs.enforce(
                LinearCombination::from_var(d),
                LinearCombination::from_var(sib_var).add_term(acc.0, -F::one()),
                LinearCombination::from_var(left_var).add_term(acc.0, -F::one()),
            );
            // d·(acc − sib) = right − sib
            cs.enforce(
                LinearCombination::from_var(d),
                LinearCombination::from_var(acc.0).add_term(sib_var, -F::one()),
                LinearCombination::from_var(right_var).add_term(sib_var, -F::one()),
            );
            acc =
                mimc_compress_gadget(cs, (left_var, left_val), (right_var, right_val), &constants);
        }
        // acc == root
        cs.enforce(
            LinearCombination::from_var(acc.0),
            LinearCombination::from_const(F::one()),
            LinearCombination::from_var(root_var),
        );
        cs.is_satisfied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::Circuit;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn boolean_gadget() {
        let mut cs = ConstraintSystem::<Fr254>::new();
        alloc_boolean(&mut cs, true);
        alloc_boolean(&mut cs, false);
        assert!(cs.is_satisfied().is_ok());
        // Force a non-boolean value: constraint must fail.
        let mut cs2 = ConstraintSystem::<Fr254>::new();
        let v = cs2.alloc(Fr254::from_u64(2));
        let lc_b = LinearCombination::from_var(v);
        let one_minus = LinearCombination::from_const(Fr254::one()).add_term(v, -Fr254::one());
        cs2.enforce(lc_b, one_minus, LinearCombination::zero());
        assert!(cs2.is_satisfied().is_err());
    }

    #[test]
    fn range_gadget() {
        let mut cs = ConstraintSystem::<Fr254>::new();
        let (_, bits) = alloc_ranged(&mut cs, 0b1011_0101, 8);
        assert_eq!(bits.len(), 8);
        assert!(cs.is_satisfied().is_ok());
    }

    #[test]
    fn mimc_gadget_matches_plain() {
        let constants = mimc_constants::<Fr254>();
        let x = Fr254::from_u64(123456);
        let key = Fr254::from_u64(777);
        let expect = mimc_hash(x, key, &constants);
        let mut cs = ConstraintSystem::<Fr254>::new();
        let x_var = cs.alloc(x);
        let key_var = cs.alloc(key);
        let (_, out) = mimc_gadget(&mut cs, x_var, x, key_var, key, &constants);
        assert_eq!(out, expect);
        assert!(cs.is_satisfied().is_ok());
        // 2 constraints per round + final add.
        assert!(cs.num_constraints() >= 2 * MIMC_ROUNDS);
    }

    #[test]
    fn merkle_membership_satisfied() {
        let constants = mimc_constants::<Fr254>();
        let mut rng = StdRng::seed_from_u64(99);
        let leaf = Fr254::random(&mut rng);
        let path: Vec<Fr254> = (0..8).map(|_| Fr254::random(&mut rng)).collect();
        let directions: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let root = MerkleMembership::compute_root(leaf, &path, &directions, &constants);
        let circuit = MerkleMembership {
            leaf,
            path,
            directions,
            root,
        };
        let mut cs = ConstraintSystem::new();
        assert!(circuit.synthesize(&mut cs).is_ok());
    }

    #[test]
    fn merkle_membership_wrong_root_fails() {
        let constants = mimc_constants::<Fr254>();
        let mut rng = StdRng::seed_from_u64(100);
        let leaf = Fr254::random(&mut rng);
        let path: Vec<Fr254> = (0..4).map(|_| Fr254::random(&mut rng)).collect();
        let directions = vec![false; 4];
        let root = MerkleMembership::compute_root(leaf, &path, &directions, &constants);
        let circuit = MerkleMembership {
            leaf,
            path,
            directions,
            root: root + Fr254::one(),
        };
        let mut cs = ConstraintSystem::new();
        assert!(circuit.synthesize(&mut cs).is_err());
    }
}
