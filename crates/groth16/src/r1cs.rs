//! Rank-1 constraint systems: the circuit representation Groth16 proves.
//!
//! A constraint is `⟨A, z⟩ · ⟨B, z⟩ = ⟨C, z⟩` over the full assignment
//! `z = (1, public inputs…, private witness…)`. The builder collects both
//! the constraint matrices (sparse) and, on the prover side, the
//! assignment values.

use gzkp_ff::PrimeField;

/// Index into the full assignment vector. Index 0 is the constant `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub usize);

impl Variable {
    /// The constant-one variable.
    pub const ONE: Variable = Variable(0);
}

/// A sparse linear combination `Σ coeff · var`.
#[derive(Debug, Clone, Default)]
pub struct LinearCombination<F: PrimeField> {
    /// `(variable index, coefficient)` pairs.
    pub terms: Vec<(usize, F)>,
}

impl<F: PrimeField> LinearCombination<F> {
    /// The empty (zero) combination.
    pub fn zero() -> Self {
        Self { terms: Vec::new() }
    }

    /// A single variable with coefficient one.
    pub fn from_var(v: Variable) -> Self {
        Self {
            terms: vec![(v.0, F::one())],
        }
    }

    /// A constant value (coefficient on the one-variable).
    pub fn from_const(c: F) -> Self {
        Self {
            terms: vec![(0, c)],
        }
    }

    /// Adds `coeff · var` to the combination.
    pub fn add_term(mut self, v: Variable, coeff: F) -> Self {
        self.terms.push((v.0, coeff));
        self
    }

    /// Evaluates against a full assignment.
    pub fn eval(&self, z: &[F]) -> F {
        self.terms
            .iter()
            .fold(F::zero(), |acc, (i, c)| acc + z[*i] * *c)
    }
}

/// Why synthesis or proving failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// A constraint evaluated to `a·b ≠ c` under the current assignment.
    Unsatisfied(usize),
    /// The circuit asked for a witness value that was not provided.
    AssignmentMissing,
    /// The constraint system exceeds the field's NTT capacity.
    DomainTooLarge,
}

impl core::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SynthesisError::Unsatisfied(i) => write!(f, "constraint {i} unsatisfied"),
            SynthesisError::AssignmentMissing => write!(f, "assignment missing"),
            SynthesisError::DomainTooLarge => write!(f, "domain exceeds field 2-adicity"),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// An R1CS instance under construction, with assignments.
#[derive(Debug, Clone)]
pub struct ConstraintSystem<F: PrimeField> {
    /// Number of public inputs (excluding the constant one).
    pub num_inputs: usize,
    /// Number of private witness variables.
    pub num_aux: usize,
    /// The constraints as sparse `(A, B, C)` rows.
    pub constraints: Vec<(
        LinearCombination<F>,
        LinearCombination<F>,
        LinearCombination<F>,
    )>,
    /// Public-input values (prover and verifier share these).
    pub input_assignment: Vec<F>,
    /// Private witness values (prover only).
    pub aux_assignment: Vec<F>,
}

impl<F: PrimeField> Default for ConstraintSystem<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PrimeField> ConstraintSystem<F> {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self {
            num_inputs: 0,
            num_aux: 0,
            constraints: Vec::new(),
            input_assignment: Vec::new(),
            aux_assignment: Vec::new(),
        }
    }

    /// Allocates a public-input variable with the given value.
    pub fn alloc_input(&mut self, value: F) -> Variable {
        self.num_inputs += 1;
        self.input_assignment.push(value);
        Variable(self.num_inputs)
    }

    /// Allocates a private witness variable with the given value.
    pub fn alloc(&mut self, value: F) -> Variable {
        self.num_aux += 1;
        self.aux_assignment.push(value);
        Variable(self.num_inputs_total() + self.num_aux - 1)
    }

    fn num_inputs_total(&self) -> usize {
        1 + self.num_inputs
    }

    /// Total variables including the constant one.
    pub fn num_variables(&self) -> usize {
        1 + self.num_inputs + self.num_aux
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds the constraint `a · b = c`.
    pub fn enforce(
        &mut self,
        a: LinearCombination<F>,
        b: LinearCombination<F>,
        c: LinearCombination<F>,
    ) {
        self.constraints.push((a, b, c));
    }

    /// The full assignment `z = (1, inputs…, aux…)`.
    ///
    /// Variables allocated with [`Self::alloc`] index past the inputs, so
    /// this is only valid once all inputs are allocated before any aux —
    /// the convention all gadgets in this workspace follow.
    pub fn full_assignment(&self) -> Vec<F> {
        let mut z = Vec::with_capacity(self.num_variables());
        z.push(F::one());
        z.extend_from_slice(&self.input_assignment);
        z.extend_from_slice(&self.aux_assignment);
        z
    }

    /// Checks every constraint against the assignment.
    pub fn is_satisfied(&self) -> Result<(), SynthesisError> {
        let z = self.full_assignment();
        for (i, (a, b, c)) in self.constraints.iter().enumerate() {
            if a.eval(&z) * b.eval(&z) != c.eval(&z) {
                return Err(SynthesisError::Unsatisfied(i));
            }
        }
        Ok(())
    }
}

/// A circuit: something that can synthesize constraints (and assignments)
/// into a [`ConstraintSystem`].
pub trait Circuit<F: PrimeField> {
    /// Builds the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if a needed witness value is unavailable.
    fn synthesize(&self, cs: &mut ConstraintSystem<F>) -> Result<(), SynthesisError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;

    /// x * y = z with z public.
    fn mul_circuit(x: u64, y: u64, z: u64) -> ConstraintSystem<Fr254> {
        let mut cs = ConstraintSystem::new();
        let z_var = cs.alloc_input(Fr254::from_u64(z));
        let x_var = cs.alloc(Fr254::from_u64(x));
        let y_var = cs.alloc(Fr254::from_u64(y));
        cs.enforce(
            LinearCombination::from_var(x_var),
            LinearCombination::from_var(y_var),
            LinearCombination::from_var(z_var),
        );
        cs
    }

    #[test]
    fn satisfied_multiplication() {
        assert!(mul_circuit(6, 7, 42).is_satisfied().is_ok());
    }

    #[test]
    fn unsatisfied_multiplication() {
        assert_eq!(
            mul_circuit(6, 7, 41).is_satisfied(),
            Err(SynthesisError::Unsatisfied(0))
        );
    }

    #[test]
    fn linear_combination_eval() {
        let mut cs = ConstraintSystem::<Fr254>::new();
        let a = cs.alloc_input(Fr254::from_u64(10));
        let b = cs.alloc(Fr254::from_u64(20));
        let lc = LinearCombination::zero()
            .add_term(a, Fr254::from_u64(3))
            .add_term(b, Fr254::from_u64(2))
            .add_term(Variable::ONE, Fr254::from_u64(5));
        assert_eq!(lc.eval(&cs.full_assignment()), Fr254::from_u64(75));
    }

    #[test]
    fn assignment_layout() {
        let mut cs = ConstraintSystem::<Fr254>::new();
        let i1 = cs.alloc_input(Fr254::from_u64(11));
        let w1 = cs.alloc(Fr254::from_u64(22));
        assert_eq!(i1, Variable(1));
        assert_eq!(w1, Variable(2));
        let z = cs.full_assignment();
        assert_eq!(z[0], Fr254::one());
        assert_eq!(z[1], Fr254::from_u64(11));
        assert_eq!(z[2], Fr254::from_u64(22));
    }
}
