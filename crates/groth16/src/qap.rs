//! R1CS → QAP reduction and the POLY-stage pipeline.
//!
//! This implements exactly the paper's accounting: "the actual zkSNARK
//! execution contains seven NTT operations in the POLY stage" (§5.2) —
//! three inverse NTTs (a, b, c evaluation vectors → coefficients), three
//! coset forward NTTs, a pointwise `(A·B − C)·Z⁻¹` on the coset, and one
//! coset inverse NTT producing the `h` coefficient vector.

use crate::r1cs::{ConstraintSystem, SynthesisError};
use gzkp_ff::PrimeField;
use gzkp_gpu_sim::StageReport;
use gzkp_ntt::gpu::GpuNttEngine;
use gzkp_ntt::{CpuNtt, Direction, Radix2Domain};
use gzkp_telemetry::{self as telemetry, NoopSink, TelemetrySink};

/// The constraint-matrix evaluations `⟨A_i, z⟩, ⟨B_i, z⟩, ⟨C_i, z⟩` padded
/// to the evaluation domain.
#[derive(Debug, Clone)]
pub struct QapWitness<F: PrimeField> {
    /// The evaluation domain (size ≥ number of constraints).
    pub domain: Radix2Domain<F>,
    /// ⟨A_i, z⟩ per domain point.
    pub a: Vec<F>,
    /// ⟨B_i, z⟩ per domain point.
    pub b: Vec<F>,
    /// ⟨C_i, z⟩ per domain point.
    pub c: Vec<F>,
}

impl<F: PrimeField> QapWitness<F> {
    /// Evaluates the constraint matrices against the assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::DomainTooLarge`] if the constraint count
    /// exceeds the field's two-adic NTT capacity.
    pub fn from_r1cs(cs: &ConstraintSystem<F>) -> Result<Self, SynthesisError> {
        let z = cs.full_assignment();
        let domain = Radix2Domain::at_least(cs.num_constraints().max(2))
            .ok_or(SynthesisError::DomainTooLarge)?;
        let mut a = vec![F::zero(); domain.size];
        let mut b = vec![F::zero(); domain.size];
        let mut c = vec![F::zero(); domain.size];
        for (i, (la, lb, lc)) in cs.constraints.iter().enumerate() {
            a[i] = la.eval(&z);
            b[i] = lb.eval(&z);
            c[i] = lc.eval(&z);
        }
        Ok(Self { domain, a, b, c })
    }
}

/// Output of the POLY stage: the coefficients of
/// `H(x) = (A(x)·B(x) − C(x)) / Z(x)` plus the simulated stage report.
#[derive(Debug)]
pub struct PolyOutput<F: PrimeField> {
    /// Coefficients of `H` (degree < N − 1).
    pub h: Vec<F>,
    /// Simulated time of the seven NTTs + pointwise kernel.
    pub report: StageReport,
}

/// Runs the POLY stage with a GPU NTT engine (functional + simulated cost).
pub fn poly_stage<F: PrimeField>(
    qap: &QapWitness<F>,
    engine: &dyn GpuNttEngine<F>,
) -> PolyOutput<F> {
    poly_stage_traced(qap, engine, &NoopSink)
}

/// [`poly_stage`] with telemetry: each of the seven NTTs runs inside its
/// own `ntt[i]` span on `sink`, carrying the kernel reports and counters
/// the engine emits.
pub fn poly_stage_traced<F: PrimeField>(
    qap: &QapWitness<F>,
    engine: &dyn GpuNttEngine<F>,
    sink: &dyn TelemetrySink,
) -> PolyOutput<F> {
    let d = &qap.domain;
    let mut report = StageReport::new("POLY");
    let mut a = qap.a.clone();
    let mut b = qap.b.clone();
    let mut c = qap.c.clone();

    let mut ntt_index = 0u32;
    let mut run = |data: &mut [F], dir: Direction, coset: bool, into: bool| {
        // Coset entry/exit scaling is a cheap pointwise kernel; fold its
        // cost into the NTT report as fixed work.
        if coset && into {
            d.coset_scale(data);
        }
        let name = format!("ntt[{ntt_index}]");
        ntt_index += 1;
        let guard = telemetry::span(sink, &name);
        let r = engine.transform_traced(d, data, dir, sink);
        drop(guard);
        for k in r.kernels {
            report.kernels.push(k);
        }
        if coset && !into {
            d.coset_unscale(data);
        }
    };

    // 1–3: INTT of a, b, c (evaluations on H → coefficients).
    run(&mut a, Direction::Inverse, false, false);
    run(&mut b, Direction::Inverse, false, false);
    run(&mut c, Direction::Inverse, false, false);
    // 4–6: coset NTT of a, b, c.
    run(&mut a, Direction::Forward, true, true);
    run(&mut b, Direction::Forward, true, true);
    run(&mut c, Direction::Forward, true, true);
    // Pointwise h_evals = (a·b − c) / Z on the coset (Z is constant there
    // per point; batch-invertible).
    let mut z_vals: Vec<F> = {
        // Z(g·ωⁱ) = (g·ωⁱ)^N − 1 = gᴺ − 1 (ωⁱᴺ = 1): constant on the coset!
        let zg = d.eval_vanishing(d.coset_gen);
        vec![zg; d.size]
    };
    gzkp_ff::batch_inverse(&mut z_vals);
    let mut h: Vec<F> = a
        .iter()
        .zip(&b)
        .zip(&c)
        .zip(&z_vals)
        .map(|(((ai, bi), ci), zi)| (*ai * *bi - *ci) * *zi)
        .collect();
    // 7: coset INTT of h.
    run(&mut h, Direction::Inverse, true, false);
    report.add_fixed("pointwise(ab-c)/Z", d.size as f64 * 0.5);

    PolyOutput { h, report }
}

/// CPU reference of the POLY stage (no cost model), for cross-validation.
pub fn poly_stage_cpu<F: PrimeField>(qap: &QapWitness<F>) -> Vec<F> {
    let d = &qap.domain;
    let ntt = CpuNtt::reference();
    let mut a = qap.a.clone();
    let mut b = qap.b.clone();
    let mut c = qap.c.clone();
    ntt.transform(d, &mut a, Direction::Inverse);
    ntt.transform(d, &mut b, Direction::Inverse);
    ntt.transform(d, &mut c, Direction::Inverse);
    ntt.coset_forward(d, &mut a);
    ntt.coset_forward(d, &mut b);
    ntt.coset_forward(d, &mut c);
    let zg_inv = d
        .eval_vanishing(d.coset_gen)
        .inverse()
        .expect("nonzero off domain");
    let mut h: Vec<F> = a
        .iter()
        .zip(&b)
        .zip(&c)
        .map(|((ai, bi), ci)| (*ai * *bi - *ci) * zg_inv)
        .collect();
    ntt.coset_inverse(d, &mut h);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::LinearCombination;
    use gzkp_ff::fields::Fr254;
    use gzkp_ff::Field;
    use gzkp_gpu_sim::v100;
    use gzkp_ntt::GzkpNtt;

    fn sample_cs() -> ConstraintSystem<Fr254> {
        // A few multiplication constraints.
        let mut cs = ConstraintSystem::new();
        let out = cs.alloc_input(Fr254::from_u64(720));
        let a = cs.alloc(Fr254::from_u64(6));
        let b = cs.alloc(Fr254::from_u64(8));
        let c = cs.alloc(Fr254::from_u64(15));
        let ab = cs.alloc(Fr254::from_u64(48));
        cs.enforce(
            LinearCombination::from_var(a),
            LinearCombination::from_var(b),
            LinearCombination::from_var(ab),
        );
        cs.enforce(
            LinearCombination::from_var(ab),
            LinearCombination::from_var(c),
            LinearCombination::from_var(out),
        );
        cs.is_satisfied().unwrap();
        cs
    }

    #[test]
    fn h_is_a_polynomial_division() {
        // For a satisfied system, (AB − C) vanishes on the domain, so the
        // division is exact: check A·B − C == H·Z as polynomials by
        // evaluating at a random off-domain point.
        let cs = sample_cs();
        let qap = QapWitness::from_r1cs(&cs).unwrap();
        let h = poly_stage_cpu(&qap);
        let d = &qap.domain;
        // Interpolate a, b, c to coefficient form.
        let ntt = CpuNtt::reference();
        let mut ac = qap.a.clone();
        let mut bc = qap.b.clone();
        let mut cc = qap.c.clone();
        ntt.transform(d, &mut ac, Direction::Inverse);
        ntt.transform(d, &mut bc, Direction::Inverse);
        ntt.transform(d, &mut cc, Direction::Inverse);
        let x = Fr254::from_u64(0xdeadbeef);
        let eval = |coeffs: &[Fr254]| {
            let mut acc = Fr254::zero();
            let mut p = Fr254::one();
            for c in coeffs {
                acc += *c * p;
                p *= x;
            }
            acc
        };
        let lhs = eval(&ac) * eval(&bc) - eval(&cc);
        let rhs = eval(&h) * d.eval_vanishing(x);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn gpu_poly_matches_cpu() {
        let cs = sample_cs();
        let qap = QapWitness::from_r1cs(&cs).unwrap();
        let expect = poly_stage_cpu(&qap);
        let engine = GzkpNtt::auto::<Fr254>(v100());
        let out = poly_stage(&qap, &engine);
        assert_eq!(out.h, expect);
        // Seven NTT kernel groups must appear in the report.
        assert!(out.report.kernels.len() >= 7);
    }

    #[test]
    fn unsatisfied_system_breaks_divisibility() {
        let mut cs = sample_cs();
        cs.aux_assignment[0] = Fr254::from_u64(7); // corrupt witness
        assert!(cs.is_satisfied().is_err());
        let qap = QapWitness::from_r1cs(&cs).unwrap();
        let h = poly_stage_cpu(&qap);
        // The "division" is no longer exact; verify A·B − C != H·Z off domain.
        let d = &qap.domain;
        let ntt = CpuNtt::reference();
        let mut ac = qap.a.clone();
        let mut bc = qap.b.clone();
        let mut cc = qap.c.clone();
        ntt.transform(d, &mut ac, Direction::Inverse);
        ntt.transform(d, &mut bc, Direction::Inverse);
        ntt.transform(d, &mut cc, Direction::Inverse);
        let x = Fr254::from_u64(0x1234567);
        let eval = |coeffs: &[Fr254]| {
            let mut acc = Fr254::zero();
            let mut p = Fr254::one();
            for c in coeffs {
                acc += *c * p;
                p *= x;
            }
            acc
        };
        assert_ne!(
            eval(&ac) * eval(&bc) - eval(&cc),
            eval(&h) * d.eval_vanishing(x)
        );
    }
}
