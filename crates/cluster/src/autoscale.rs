//! Queue-depth autoscaling with modeled warm-up cost.
//!
//! The policy is deliberately simple — `ceil(demand / jobs_per_host)`
//! clamped to `[min_hosts, max_hosts]` with a cooldown between size
//! changes — because the interesting dynamics live elsewhere: a host the
//! autoscaler adds is *not immediately useful*. It spends
//! [`AutoscalePolicy::warmup`] in the `Warming` state (engine
//! construction, preprocessing-cache fill) before the scheduler may
//! place work on it, so scaling up on a backlog that will clear within
//! the warm-up window buys nothing. The cooldown is what keeps the
//! controller from flapping against that lag.

use std::time::{Duration, Instant};

/// Autoscaler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Lower bound on cluster size; never scales below.
    pub min_hosts: usize,
    /// Upper bound on cluster size; never scales above.
    pub max_hosts: usize,
    /// Demand (queued + in-flight jobs) one host is expected to absorb;
    /// the controller targets `ceil(demand / jobs_per_host)` hosts.
    pub jobs_per_host: f64,
    /// Time a freshly started host spends warming before it accepts
    /// work.
    pub warmup: Duration,
    /// Minimum time between size changes (hysteresis against flapping
    /// while warm-ups are in flight).
    pub cooldown: Duration,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            min_hosts: 1,
            max_hosts: 8,
            jobs_per_host: 4.0,
            warmup: Duration::from_millis(20),
            cooldown: Duration::from_millis(50),
        }
    }
}

/// The controller: pure target computation plus cooldown state.
#[derive(Debug)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    last_change: Option<Instant>,
}

impl Autoscaler {
    /// Builds a controller with the given policy.
    pub fn new(policy: AutoscalePolicy) -> Self {
        Self {
            policy,
            last_change: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// Desired host count for `demand` pending + in-flight jobs given
    /// `current` non-dead hosts. Returns `current` (no change) while the
    /// cooldown since the last change is still running; otherwise the
    /// clamped target, recording a change when it differs.
    pub fn target(&mut self, now: Instant, demand: usize, current: usize) -> usize {
        if let Some(last) = self.last_change {
            if now.saturating_duration_since(last) < self.policy.cooldown {
                return current;
            }
        }
        let raw = (demand as f64 / self.policy.jobs_per_host.max(1e-9)).ceil() as usize;
        let target = raw.clamp(self.policy.min_hosts, self.policy.max_hosts);
        if target != current {
            self.last_change = Some(now);
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            min_hosts: 1,
            max_hosts: 4,
            jobs_per_host: 4.0,
            warmup: Duration::from_millis(5),
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn targets_track_demand_with_clamps() {
        let mut a = Autoscaler::new(policy());
        let t0 = Instant::now();
        assert_eq!(a.target(t0, 0, 1), 1, "min clamp");
        let mut a = Autoscaler::new(policy());
        assert_eq!(a.target(t0, 9, 1), 3, "ceil(9/4)");
        let mut a = Autoscaler::new(policy());
        assert_eq!(a.target(t0, 100, 1), 4, "max clamp");
    }

    #[test]
    fn cooldown_suppresses_flapping() {
        let mut a = Autoscaler::new(policy());
        let t0 = Instant::now();
        assert_eq!(a.target(t0, 16, 1), 4);
        // Demand collapses immediately — but we just changed size.
        assert_eq!(a.target(t0 + Duration::from_millis(10), 0, 4), 4);
        // After the cooldown, scale-down proceeds.
        assert_eq!(a.target(t0 + Duration::from_millis(150), 0, 4), 1);
    }
}
