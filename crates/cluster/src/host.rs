//! A simulated proving host: one [`ProvingService`] (with its own device
//! fleet, worker pool, and preprocessing cache) plus the lifecycle and
//! failure machinery the cluster needs around it — warm-up, draining,
//! and abrupt kills that interrupt in-flight checkpointing tasks.

use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_runtime::{DeviceHealth, FleetUtilization, HealthPolicy};
use gzkp_service::{
    JobHandle, JobOptions, JobResult, ProofTask, ProvingService, RetryPolicy, ServiceConfig,
    ServiceStats, SubmitError,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Host lifecycle. Numeric values double as the `host.state` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Started but still paying its warm-up cost; takes no work.
    Warming,
    /// Accepting and executing work.
    Up,
    /// Scale-down target: finishes in-flight work, takes nothing new.
    Draining,
    /// Gone — killed by chaos or retired by the autoscaler.
    Dead,
}

impl HostState {
    /// Gauge encoding (0 warming, 1 up, 2 draining, 3 dead).
    pub fn as_gauge(self) -> f64 {
        match self {
            HostState::Warming => 0.0,
            HostState::Up => 1.0,
            HostState::Draining => 2.0,
            HostState::Dead => 3.0,
        }
    }
}

/// Per-host sizing, shared by every host the cluster starts.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The host's simulated device fleet (non-empty; one service worker
    /// pinned per device).
    pub devices: Vec<DeviceConfig>,
    /// Host-local job bound: the cluster never over-commits a host past
    /// this many unresolved jobs.
    pub queue_capacity: usize,
    /// Byte budget of the host's preprocessing-table cache.
    pub prep_cache_bytes: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        Self {
            devices: vec![gzkp_gpu_sim::v100()],
            queue_capacity: 8,
            prep_cache_bytes: 256 << 20,
        }
    }
}

/// Final accounting of one host, reported by
/// [`crate::ClusterOutcome::hosts`].
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host id.
    pub id: usize,
    /// State at the end of the run.
    pub state: HostState,
    /// Whether chaos killed this host (as opposed to retiring).
    pub killed: bool,
    /// Jobs that resolved successfully on this host.
    pub completed: u64,
    /// Jobs that resolved with an error on this host (including the
    /// interrupted ones later resumed elsewhere).
    pub failed: u64,
    /// Per-device utilization of the host's fleet, captured at stop.
    pub utilization: Option<FleetUtilization>,
    /// The host service's lifetime counters, captured at stop.
    pub stats: Option<ServiceStats>,
}

/// One simulated host.
pub struct SimHost {
    id: usize,
    state: HostState,
    warm_until: Instant,
    service: Option<ProvingService>,
    /// The interrupt flag every checkpointing task dispatched here
    /// shares; [`SimHost::kill`] raises it.
    kill_flag: Arc<AtomicBool>,
    inflight: HashMap<u64, JobHandle>,
    /// Host-level circuit breaker — the device-quarantine policy
    /// reapplied one level up: repeated job failures quarantine the whole
    /// host from placement until its probation window passes.
    health: DeviceHealth,
    killed: bool,
    completed: u64,
    failed: u64,
    utilization: Option<FleetUtilization>,
    final_stats: Option<ServiceStats>,
    queue_capacity: usize,
    primary_device: DeviceConfig,
}

impl SimHost {
    /// Starts a host: its proving service boots immediately, but the
    /// host stays [`HostState::Warming`] (unschedulable) until
    /// `warm_until`. Host services run with retries disabled — the
    /// cluster layer owns failure handling via checkpointed resume, and
    /// a host-local retry of an interrupted task could only stall the
    /// kill path.
    pub fn start(id: usize, cfg: &HostConfig, health: HealthPolicy, warm_until: Instant) -> Self {
        assert!(!cfg.devices.is_empty(), "a host needs at least one device");
        let service = ProvingService::start(ServiceConfig {
            queue_capacity: cfg.queue_capacity.max(1),
            prep_cache_bytes: cfg.prep_cache_bytes,
            default_deadline: None,
            devices: cfg.devices.clone(),
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            ..ServiceConfig::default()
        });
        Self {
            id,
            state: HostState::Warming,
            warm_until,
            service: Some(service),
            kill_flag: Arc::new(AtomicBool::new(false)),
            inflight: HashMap::new(),
            health: DeviceHealth::new(health),
            killed: false,
            completed: 0,
            failed: 0,
            utilization: None,
            final_stats: None,
            queue_capacity: cfg.queue_capacity.max(1),
            primary_device: cfg.devices[0].clone(),
        }
    }

    /// Host id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> HostState {
        self.state
    }

    /// Unresolved jobs dispatched here.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// The interrupt flag to hand to tasks built for this host.
    pub fn interrupt_flag(&self) -> Arc<AtomicBool> {
        self.kill_flag.clone()
    }

    /// The host's shared preprocessing cache, for task construction.
    /// `None` once the host is stopped.
    pub fn store(&self) -> Option<Arc<gzkp_msm::PreprocessStore>> {
        self.service.as_ref().map(|s| s.store())
    }

    /// Primary device of the host's fleet (tasks are built against it;
    /// the host service re-places stages across its own fleet).
    pub fn primary_device(&self) -> DeviceConfig {
        self.primary_device.clone()
    }

    /// Promotes a warming host whose warm-up window has passed.
    pub fn promote_if_warm(&mut self, now: Instant) -> bool {
        if self.state == HostState::Warming && now >= self.warm_until {
            self.state = HostState::Up;
            return true;
        }
        false
    }

    /// Marks the host a scale-down target; it finishes in-flight work
    /// but the scheduler stops placing on it.
    pub fn begin_drain(&mut self) {
        if self.state == HostState::Up || self.state == HostState::Warming {
            self.state = HostState::Draining;
        }
    }

    /// Scheduler view of this host, with the circuit-breaker verdict
    /// folded in.
    pub fn view(&mut self, now: Instant) -> crate::scheduler::HostView {
        crate::scheduler::HostView {
            id: self.id,
            state: self.state,
            available: self.health.available(now),
            inflight: self.inflight.len(),
            capacity: self.queue_capacity,
        }
    }

    /// Records a job outcome in the host-level circuit breaker.
    /// Returns `true` when the failure newly quarantined the host.
    pub fn record_outcome(&mut self, now: Instant, ok: bool) -> bool {
        if ok {
            self.completed += 1;
            self.health.on_success(now);
            false
        } else {
            self.failed += 1;
            self.health.on_failure(now, false)
        }
    }

    /// Submits a built task under cluster job id `job_id`.
    ///
    /// # Errors
    ///
    /// Propagates the service's typed backpressure; the cluster re-queues
    /// the job rather than dropping it.
    pub fn submit(
        &mut self,
        job_id: u64,
        task: Box<dyn ProofTask>,
        opts: JobOptions,
    ) -> Result<(), SubmitError> {
        let service = self.service.as_ref().ok_or(SubmitError::ShuttingDown)?;
        let handle = service.submit(task, opts)?;
        self.inflight.insert(job_id, handle);
        Ok(())
    }

    /// Harvests every job that has resolved since the last poll.
    pub fn poll_finished(&mut self) -> Vec<(u64, JobResult)> {
        let done: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, h)| h.is_finished())
            .map(|(&id, _)| id)
            .collect();
        done.into_iter()
            .map(|id| {
                let handle = self.inflight.remove(&id).expect("id from this map");
                (id, handle.wait())
            })
            .collect()
    }

    /// Kills the host: raises the interrupt flag (checkpointing tasks
    /// persist their progress and fail fast at the next step boundary),
    /// shuts the service down, and returns every in-flight job's final
    /// result so the cluster can route the interrupted ones to survivors.
    pub fn kill(&mut self) -> Vec<(u64, JobResult)> {
        self.kill_flag.store(true, Ordering::Relaxed);
        self.killed = true;
        self.stop();
        self.drain_inflight()
    }

    /// Graceful retirement (scale-down or end of run): waits for
    /// in-flight work, then stops the service. Returns any results that
    /// resolved during the final drain.
    pub fn retire(&mut self) -> Vec<(u64, JobResult)> {
        self.stop();
        self.drain_inflight()
    }

    fn stop(&mut self) {
        if let Some(service) = self.service.take() {
            self.utilization = service.fleet_utilization();
            self.final_stats = Some(service.shutdown());
        }
        self.state = HostState::Dead;
    }

    fn drain_inflight(&mut self) -> Vec<(u64, JobResult)> {
        let ids: Vec<u64> = self.inflight.keys().copied().collect();
        ids.into_iter()
            .map(|id| {
                let handle = self.inflight.remove(&id).expect("id from this map");
                (id, handle.wait())
            })
            .collect()
    }

    /// Final accounting row.
    pub fn report(&self) -> HostReport {
        HostReport {
            id: self.id,
            state: self.state,
            killed: self.killed,
            completed: self.completed,
            failed: self.failed,
            utilization: self.utilization.clone(),
            stats: self.final_stats,
        }
    }
}
