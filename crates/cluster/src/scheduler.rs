//! Cross-host placement: health-gated least-loaded routing with
//! anti-affinity for resumed jobs.
//!
//! The per-host view the cluster hands in already folds in the host's
//! circuit-breaker verdict ([`HostView::available`] — the PR 5 device
//! quarantine policy reapplied at host granularity), so this module is a
//! pure policy function over plain data, testable without spinning up
//! hosts.

use crate::host::HostState;

/// What the placement policy knows about one host at decision time.
#[derive(Debug, Clone, Copy)]
pub struct HostView {
    /// Host id.
    pub id: usize,
    /// Lifecycle state; only [`HostState::Up`] hosts take work.
    pub state: HostState,
    /// Circuit-breaker verdict: `false` while the host is quarantined
    /// after repeated failures.
    pub available: bool,
    /// Jobs currently dispatched to the host and unresolved.
    pub inflight: usize,
    /// Host-local queue bound; the scheduler never over-commits past it.
    pub capacity: usize,
}

impl HostView {
    fn accepts(&self) -> bool {
        self.state == HostState::Up && self.available && self.inflight < self.capacity
    }
}

/// Picks the host for one job: the least-loaded accepting host,
/// excluding `avoid` (the host a resumed job just died on — even if a
/// replacement host reuses its id, re-placing the resume there is the
/// one placement that can repeat the failure). Lowest id breaks ties for
/// determinism. `None` when no host can take work this tick; the job
/// stays queued.
pub fn pick_host(views: &[HostView], avoid: Option<usize>) -> Option<usize> {
    views
        .iter()
        .filter(|v| v.accepts() && Some(v.id) != avoid)
        .min_by_key(|v| (v.inflight, v.id))
        .map(|v| v.id)
}

/// Deadline-slack ordering: among queued jobs, the one with the least
/// slack (deadline minus now minus modeled remaining cost) dispatches
/// first. `None` deadlines sort last — they have infinite slack.
pub fn urgency_key(slack_ns: Option<f64>) -> (bool, i64) {
    match slack_ns {
        Some(s) => (false, s as i64),
        None => (true, i64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up(id: usize, inflight: usize) -> HostView {
        HostView {
            id,
            state: HostState::Up,
            available: true,
            inflight,
            capacity: 8,
        }
    }

    #[test]
    fn least_loaded_wins_and_ids_break_ties() {
        let views = [up(0, 3), up(1, 1), up(2, 1)];
        assert_eq!(pick_host(&views, None), Some(1));
    }

    #[test]
    fn dead_quarantined_and_full_hosts_are_skipped() {
        let mut dead = up(0, 0);
        dead.state = HostState::Dead;
        let mut quarantined = up(1, 0);
        quarantined.available = false;
        let mut full = up(2, 8);
        full.inflight = 8;
        assert_eq!(pick_host(&[dead, quarantined, full], None), None);
        assert_eq!(
            pick_host(&[dead, quarantined, full, up(3, 7)], None),
            Some(3)
        );
    }

    #[test]
    fn resume_avoids_the_host_it_died_on() {
        let views = [up(0, 0), up(1, 5)];
        assert_eq!(pick_host(&views, Some(0)), Some(1));
        // ...unless no other host exists: then the job waits.
        assert_eq!(pick_host(&views[..1], Some(0)), None);
    }

    #[test]
    fn urgency_orders_tight_deadlines_first() {
        let mut keys = [
            urgency_key(None),
            urgency_key(Some(5e6)),
            urgency_key(Some(1e6)),
        ];
        keys.sort();
        assert_eq!(keys[0], urgency_key(Some(1e6)));
        assert_eq!(keys[2], urgency_key(None));
    }
}
