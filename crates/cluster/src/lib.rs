//! # gzkp-cluster — cluster-scale proving over simulated hosts
//!
//! The serving layer below this crate ([`gzkp_service`]) is a *single
//! host*: one queue, one worker pool, one simulated device fleet. Real
//! proving deployments at the paper's target scale (Zcash/Filecoin-class
//! request streams, §5.1) run many such hosts, and the interesting
//! problems move up a level: admitting a multi-tenant request stream
//! fairly, routing jobs across hosts by load and health, surviving the
//! loss of a whole host mid-proof, and growing/shrinking the host pool
//! with demand. This crate models that layer end to end:
//!
//! * **Checkpointed jobs** — every job runs as a
//!   [`gzkp_service::CheckpointingTask`] over a pluggable
//!   [`gzkp_proof_system::ProofSystem`] backend (Groth16 or PLONK),
//!   persisting versioned checkpoint bytes after the POLY stage
//!   and after each MSM step. When chaos kills a host, the
//!   cluster resumes the interrupted jobs on survivors from those bytes,
//!   and the final proofs are **byte-identical** to uninterrupted runs
//!   (the blinding seed travels inside the checkpoint and is drawn only
//!   after the last MSM).
//! * **The front door** ([`FrontDoor`]) — per-tenant token-bucket rate
//!   limiting in front of weighted-fair queuing, with typed backpressure
//!   ([`AdmissionError`]) so clients can tell "slow down" from "shed
//!   load".
//! * **The scheduler** ([`pick_host`]) — health-gated least-loaded
//!   placement with anti-affinity for resumed jobs; host health reuses
//!   the device circuit-breaker policy ([`gzkp_runtime::DeviceHealth`])
//!   at host granularity.
//! * **The autoscaler** ([`Autoscaler`]) — queue-depth scaling with
//!   modeled warm-up (new hosts spend a window unschedulable) and
//!   cooldown hysteresis.
//!
//! Hosts are [`SimHost`]s — real [`gzkp_service::ProvingService`]
//! instances with their own device fleets — so everything the lower
//! layers guarantee (stage pipelining, verify-before-return, preprocess
//! caching) holds inside each host unchanged.
//!
//! ## Example
//!
//! ```
//! use gzkp_cluster::{groth16_factory, Cluster, ClusterConfig, ClusterJobOptions, TenantSpec};
//! use gzkp_curves::bn254::{Bn254, Fr};
//! use gzkp_groth16::{setup, r1cs::{ConstraintSystem, LinearCombination}};
//! use gzkp_ff::Field;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let mut cs = ConstraintSystem::<Fr>::new();
//! let n = cs.alloc_input(Fr::from_u64(35));
//! let p = cs.alloc(Fr::from_u64(5));
//! let q = cs.alloc(Fr::from_u64(7));
//! cs.enforce(
//!     LinearCombination::from_var(p),
//!     LinearCombination::from_var(q),
//!     LinearCombination::from_var(n),
//! );
//! let cs = Arc::new(cs);
//! let mut rng = StdRng::seed_from_u64(1);
//! let (pk, vk) = setup::<Bn254, _>(&cs, &mut rng).unwrap();
//! let (pk, vk) = (Arc::new(pk), Arc::new(vk));
//!
//! let mut cluster = Cluster::start(ClusterConfig {
//!     hosts: 2,
//!     tenants: vec![TenantSpec::new("zcash", 3.0), TenantSpec::new("batch", 1.0)],
//!     ..ClusterConfig::default()
//! });
//! let job = cluster
//!     .submit(
//!         "zcash",
//!         groth16_factory::<Bn254>(cs, pk, Some(vk), 7),
//!         ClusterJobOptions::default(),
//!     )
//!     .unwrap();
//! let outcome = cluster.drain(Duration::from_secs(30));
//! let result = outcome.results.iter().find(|r| r.id == job).unwrap();
//! assert!(result.outcome.is_ok());
//! assert_eq!(outcome.leaked_claims, 0);
//! ```

#![warn(missing_docs)]

pub mod autoscale;
pub mod cluster;
pub mod frontdoor;
pub mod host;
pub mod scheduler;

pub use autoscale::{AutoscalePolicy, Autoscaler};
pub use cluster::{
    groth16_factory, system_factory, workload_factory, Cluster, ClusterConfig, ClusterJobOptions,
    ClusterOutcome, ClusterReportJson, ClusterResult, ClusterStats, TaskBuild, TaskFactory,
};
pub use frontdoor::{AdmissionError, FrontDoor, RateLimit, TenantSpec, TenantStats};
pub use host::{HostConfig, HostReport, HostState, SimHost};
pub use scheduler::{pick_host, urgency_key, HostView};
