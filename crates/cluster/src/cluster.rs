//! The cluster itself: admission-controlled intake, cross-host
//! placement, checkpointed failure recovery, and queue-depth
//! autoscaling, driven by an explicit [`Cluster::pump`] tick so tests
//! and the chaos replay own the event loop.

use crate::autoscale::{AutoscalePolicy, Autoscaler};
use crate::frontdoor::{AdmissionError, FrontDoor, TenantSpec, TenantStats};
use crate::host::{HostConfig, HostReport, HostState, SimHost};
use crate::scheduler::{pick_host, urgency_key, HostView};
use gzkp_gpu_sim::device::DeviceConfig;
use gzkp_gpu_sim::{FaultInjector, FaultPlan, FaultSummary};
use gzkp_msm::PreprocessStore;
use gzkp_runtime::HealthPolicy;
use gzkp_service::{CheckpointSlot, JobError, JobOptions, Priority, ProofTask, SubmitError};
use gzkp_telemetry::{names, Counter, Gauge, LatencyHistogram, MetricsRegistry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Everything a [`TaskFactory`] gets to build (or resume) one proof task
/// for a particular host: the host's primary device and preprocessing
/// cache, the job's checkpoint slot and latest checkpoint bytes, and the
/// host's interrupt flag.
pub struct TaskBuild {
    /// Primary device of the chosen host.
    pub device: DeviceConfig,
    /// The host service's shared preprocessing cache.
    pub store: Option<Arc<PreprocessStore>>,
    /// Latest checkpoint bytes, when the job already made progress on
    /// another host; `None` starts fresh.
    pub checkpoint: Option<Vec<u8>>,
    /// The job's checkpoint slot — the task persists into it at every
    /// stage boundary.
    pub slot: CheckpointSlot,
    /// The chosen host's kill flag; the task aborts between MSM steps
    /// when it rises.
    pub interrupt: Arc<AtomicBool>,
}

/// Builds a proof task for one placement of a job. Called once per
/// dispatch — including re-dispatches after a host kill, where
/// [`TaskBuild::checkpoint`] carries the progress to resume from.
pub type TaskFactory = Arc<dyn Fn(TaskBuild) -> Result<Box<dyn ProofTask>, String> + Send + Sync>;

/// A [`TaskFactory`] over an explicit circuit/key pair under any
/// [`ProofSystem`] backend: builds [`gzkp_service::CheckpointingTask`]s,
/// resuming from checkpoint bytes when present. `vk` arms
/// verify-before-return.
pub fn system_factory<S: gzkp_proof_system::ProofSystem>(
    circuit: Arc<S::Circuit>,
    pk: Arc<S::ProvingKey>,
    vk: Option<Arc<S::VerifyingKey>>,
    seed: u64,
) -> TaskFactory {
    Arc::new(move |build: TaskBuild| {
        let mut task = match &build.checkpoint {
            Some(bytes) => gzkp_service::CheckpointingTask::<S>::resume(
                circuit.clone(),
                pk.clone(),
                build.device.clone(),
                build.store.clone(),
                bytes,
                build.slot.clone(),
                build.interrupt.clone(),
            )?,
            None => gzkp_service::CheckpointingTask::<S>::new(
                circuit.clone(),
                pk.clone(),
                build.device.clone(),
                build.store.clone(),
                seed,
                build.slot.clone(),
                build.interrupt.clone(),
            ),
        };
        if let Some(vk) = &vk {
            task = task.with_verifying_key(vk.clone());
        }
        Ok(Box::new(task) as Box<dyn ProofTask>)
    })
}

/// [`system_factory`] specialized to Groth16 over curve `P`.
pub fn groth16_factory<P>(
    cs: Arc<gzkp_groth16::r1cs::ConstraintSystem<P::Fr>>,
    pk: Arc<gzkp_groth16::ProvingKey<P>>,
    vk: Option<Arc<gzkp_groth16::VerifyingKey<P>>>,
    seed: u64,
) -> TaskFactory
where
    P: gzkp_curves::pairing::PairingConfig + 'static,
    <P::G1 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::G2 as gzkp_curves::CurveParams>::Base: gzkp_curves::CoordField,
    <P::Fq12C as gzkp_ff::ext::Fp12Config>::Fp6C: gzkp_ff::ext::Fp6Config<Fp2C = P::Fq2C>,
    P::Fq2C: gzkp_ff::ext::Fp2Config,
{
    system_factory::<gzkp_groth16::Groth16System<P>>(cs, pk, vk, seed)
}

/// A [`TaskFactory`] over request `index` of a prepared replay workload
/// (see [`gzkp_service::PreparedWorkload::checkpoint_task`]).
pub fn workload_factory(
    workload: Arc<gzkp_service::PreparedWorkload>,
    index: usize,
    verify: bool,
) -> TaskFactory {
    Arc::new(move |build: TaskBuild| {
        workload.checkpoint_task(
            index,
            &build.device,
            build.store.clone(),
            build.slot.clone(),
            build.interrupt.clone(),
            build.checkpoint.as_deref(),
            verify,
        )
    })
}

/// Per-job submission options at the cluster level.
#[derive(Debug, Clone, Copy)]
pub struct ClusterJobOptions {
    /// Scheduling class inside each host's service.
    pub priority: Priority,
    /// End-to-end deadline from admission. A job re-dispatched after a
    /// host kill carries its *remaining* deadline, not a fresh one.
    pub deadline: Option<Duration>,
}

impl Default for ClusterJobOptions {
    fn default() -> Self {
        Self {
            priority: Priority::Normal,
            deadline: None,
        }
    }
}

/// Cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Hosts started up-front (already warm).
    pub hosts: usize,
    /// Per-host sizing.
    pub host: HostConfig,
    /// Front-door tenants (fair-share weights + rate limits).
    pub tenants: Vec<TenantSpec>,
    /// Cluster-wide bound on jobs pending in the front door.
    pub pending_capacity: usize,
    /// Queue-depth autoscaling; `None` keeps the host count fixed.
    pub autoscale: Option<AutoscalePolicy>,
    /// Chaos: `rates.host_kill` is rolled once per pump tick per live
    /// host (stage-level rates are ignored at this layer — host services
    /// run fault-free; the cluster's failure unit is the host).
    pub chaos: Option<FaultPlan>,
    /// Upper bound on chaos host kills per run (a kill is only rolled
    /// while at least two hosts are up, so work always has somewhere to
    /// resume).
    pub max_kills: u64,
    /// Resume attempts per job before it fails permanently.
    pub max_resumes: u32,
    /// Host-level circuit-breaker policy (quarantine after repeated
    /// failures, doubling probation).
    pub health: HealthPolicy,
    /// Live metrics registry; `None` records nothing.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            hosts: 2,
            host: HostConfig::default(),
            tenants: vec![TenantSpec::new("default", 1.0)],
            pending_capacity: 256,
            autoscale: None,
            chaos: None,
            max_kills: 1,
            max_resumes: 3,
            health: HealthPolicy::default(),
            metrics: None,
        }
    }
}

/// Lifetime counters of one cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Jobs admitted past the front door.
    pub admitted: u64,
    /// Submissions refused by a tenant rate limit.
    pub rejected_rate_limited: u64,
    /// Submissions refused by the cluster-wide pending bound.
    pub rejected_saturated: u64,
    /// Jobs that produced a proof.
    pub completed: u64,
    /// Jobs that failed permanently.
    pub failed: u64,
    /// Jobs dropped at a deadline.
    pub deadline_missed: u64,
    /// Checkpointed resumes after host kills.
    pub resumes: u64,
    /// Chaos host kills fired.
    pub host_kills: u64,
    /// Hosts the autoscaler started beyond the initial set.
    pub hosts_started: u64,
    /// Hosts the autoscaler retired.
    pub hosts_retired: u64,
    /// Times the host circuit breaker quarantined a host.
    pub host_quarantines: u64,
}

/// Final record of one cluster job.
#[derive(Debug)]
pub struct ClusterResult {
    /// Cluster-assigned job id (returned by [`Cluster::submit`]).
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// The proof bytes, or why there are none.
    pub outcome: Result<Vec<u8>, String>,
    /// Checkpointed resumes this job went through.
    pub resumes: u32,
    /// Admission-to-resolution latency.
    pub latency: Duration,
}

/// Everything [`Cluster::drain`] hands back.
pub struct ClusterOutcome {
    /// Per-job records, in resolution order.
    pub results: Vec<ClusterResult>,
    /// Lifetime counters.
    pub stats: ClusterStats,
    /// Per-tenant admission counters.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Per-host accounting, in host-id order.
    pub hosts: Vec<HostReport>,
    /// Cluster-simulated makespan: hosts run in parallel in the setting
    /// being modeled, so this is the *maximum* over hosts of each host
    /// fleet's simulated completion time.
    pub makespan_ns: f64,
    /// Jobs still claimed anywhere after the drain — must be zero; a
    /// non-zero value means a kill or retirement leaked a claim.
    pub leaked_claims: usize,
    /// Chaos accounting, when a fault plan was configured.
    pub chaos: Option<FaultSummary>,
}

impl ClusterOutcome {
    /// Completed-proof count per tenant, for fair-share analysis.
    pub fn completed_by_tenant(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        for r in &self.results {
            if r.outcome.is_ok() {
                *map.entry(r.tenant.clone()).or_insert(0u64) += 1;
            }
        }
        map
    }

    /// JSON summary (`zkserve --cluster` emits this next to its tables).
    pub fn report_json(&self) -> String {
        serde_json::to_string_pretty(&ClusterReportJson {
            completed: self.stats.completed,
            failed: self.stats.failed,
            resumes: self.stats.resumes,
            host_kills: self.stats.host_kills,
            leaked_claims: self.leaked_claims as u64,
            makespan_ms: self.makespan_ns / 1e6,
            completed_by_tenant: self.completed_by_tenant(),
        })
        .expect("report serializes")
    }
}

/// Serialized form of the cluster summary. The per-tenant map exercises
/// the vendored serde stub's `BTreeMap` support.
#[derive(Debug, serde::Serialize, serde::Deserialize, PartialEq)]
pub struct ClusterReportJson {
    /// Jobs that produced a proof.
    pub completed: u64,
    /// Jobs that failed permanently.
    pub failed: u64,
    /// Checkpointed resumes after host kills.
    pub resumes: u64,
    /// Chaos host kills fired.
    pub host_kills: u64,
    /// Claims leaked after drain (must be 0).
    pub leaked_claims: u64,
    /// Cluster-simulated makespan in milliseconds.
    pub makespan_ms: f64,
    /// Completed proofs per tenant.
    pub completed_by_tenant: BTreeMap<String, u64>,
}

struct ClusterMetrics {
    admitted: Counter,
    rejected_rate: Counter,
    rejected_saturated: Counter,
    completed: Counter,
    failed: Counter,
    resumes: Counter,
    host_kills: Counter,
    queue_depth: Gauge,
    hosts_up: Gauge,
    latency: LatencyHistogram,
    registry: Arc<MetricsRegistry>,
}

impl ClusterMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            admitted: registry.counter(names::CLUSTER_ADMITTED),
            rejected_rate: registry.counter(names::CLUSTER_REJECTED_RATE),
            rejected_saturated: registry.counter(names::CLUSTER_REJECTED_SATURATED),
            completed: registry.counter(names::CLUSTER_COMPLETED),
            failed: registry.counter(names::CLUSTER_FAILED),
            resumes: registry.counter(names::CLUSTER_RESUMES),
            host_kills: registry.counter(names::CLUSTER_HOST_KILLS),
            queue_depth: registry.gauge(names::CLUSTER_QUEUE_DEPTH),
            hosts_up: registry.gauge(names::CLUSTER_HOSTS_UP),
            latency: registry.histogram(names::CLUSTER_JOB_LATENCY_NS),
            registry,
        }
    }

    fn host_label(id: usize) -> String {
        format!("h{id}")
    }

    fn set_host_gauges(&self, host: &mut SimHost, now: Instant) {
        let label = Self::host_label(host.id());
        self.registry
            .gauge_with(names::HOST_INFLIGHT, names::LABEL_HOST, &label)
            .set(host.inflight() as f64);
        self.registry
            .gauge_with(names::HOST_STATE, names::LABEL_HOST, &label)
            .set(host.view(now).state.as_gauge());
    }

    fn host_completed(&self, id: usize) {
        self.registry
            .counter_with(
                names::HOST_COMPLETED,
                names::LABEL_HOST,
                &Self::host_label(id),
            )
            .inc();
    }
}

struct Job {
    tenant: String,
    factory: TaskFactory,
    opts: ClusterJobOptions,
    admitted_at: Instant,
    slot: CheckpointSlot,
    resumes: u32,
    avoid: Option<usize>,
    host: Option<usize>,
}

/// The multi-host proving cluster. Submission is non-blocking; progress
/// is made by [`Cluster::pump`] ticks (or by [`Cluster::drain`], which
/// pumps to completion).
pub struct Cluster {
    cfg: ClusterConfig,
    door: FrontDoor<u64>,
    jobs: HashMap<u64, Job>,
    /// Jobs popped from the door (or recovered from a dead host) still
    /// waiting for a placement.
    ready: VecDeque<u64>,
    hosts: Vec<SimHost>,
    autoscaler: Option<Autoscaler>,
    injector: Option<FaultInjector>,
    metrics: Option<ClusterMetrics>,
    tick: u64,
    next_job: u64,
    results: Vec<ClusterResult>,
    stats: ClusterStats,
    /// `(tenant, job)` in completion order, for fairness analysis.
    completion_log: Vec<(String, u64)>,
}

impl Cluster {
    /// Starts `cfg.hosts` hosts (warm immediately — warm-up cost applies
    /// only to autoscaler additions) and opens the front door.
    pub fn start(cfg: ClusterConfig) -> Self {
        let now = Instant::now();
        let hosts: Vec<SimHost> = (0..cfg.hosts.max(1))
            .map(|id| {
                let mut h = SimHost::start(id, &cfg.host, cfg.health, now);
                h.promote_if_warm(now);
                h
            })
            .collect();
        Self {
            door: FrontDoor::new(&cfg.tenants, cfg.pending_capacity),
            jobs: HashMap::new(),
            ready: VecDeque::new(),
            hosts,
            autoscaler: cfg.autoscale.map(Autoscaler::new),
            injector: cfg.chaos.clone().map(FaultInjector::new),
            metrics: cfg.metrics.clone().map(ClusterMetrics::new),
            cfg,
            tick: 0,
            next_job: 0,
            results: Vec::new(),
            stats: ClusterStats::default(),
            completion_log: Vec::new(),
        }
    }

    /// Submits one job for `tenant`. Runs the full admission pipeline;
    /// on success the job id is queued fairly and will be placed by a
    /// later pump.
    ///
    /// # Errors
    ///
    /// Typed backpressure — see [`AdmissionError`].
    pub fn submit(
        &mut self,
        tenant: &str,
        factory: TaskFactory,
        opts: ClusterJobOptions,
    ) -> Result<u64, AdmissionError> {
        self.submit_at(tenant, factory, opts, Instant::now())
    }

    /// [`Cluster::submit`] with an explicit admission clock (testing
    /// rate limits deterministically).
    ///
    /// # Errors
    ///
    /// Typed backpressure — see [`AdmissionError`].
    pub fn submit_at(
        &mut self,
        tenant: &str,
        factory: TaskFactory,
        opts: ClusterJobOptions,
        now: Instant,
    ) -> Result<u64, AdmissionError> {
        let id = self.next_job;
        match self.door.admit_at(tenant, id, now) {
            Ok(()) => {}
            Err(e) => {
                match &e {
                    AdmissionError::RateLimited { .. } => {
                        self.stats.rejected_rate_limited += 1;
                        if let Some(m) = &self.metrics {
                            m.rejected_rate.inc();
                        }
                    }
                    AdmissionError::Saturated { .. } => {
                        self.stats.rejected_saturated += 1;
                        if let Some(m) = &self.metrics {
                            m.rejected_saturated.inc();
                        }
                    }
                    _ => {}
                }
                return Err(e);
            }
        }
        self.next_job += 1;
        self.stats.admitted += 1;
        if let Some(m) = &self.metrics {
            m.admitted.inc();
        }
        self.jobs.insert(
            id,
            Job {
                tenant: tenant.to_string(),
                factory,
                opts,
                admitted_at: now,
                slot: Arc::new(Mutex::new(None)),
                resumes: 0,
                avoid: None,
                host: None,
            },
        );
        Ok(id)
    }

    /// One scheduling tick: promote warming hosts, roll chaos, autoscale,
    /// place ready work, harvest finished work. Returns the number of
    /// jobs resolved this tick.
    pub fn pump(&mut self) -> usize {
        let now = Instant::now();
        self.tick += 1;

        for host in &mut self.hosts {
            host.promote_if_warm(now);
        }
        self.roll_chaos();
        self.autoscale(now);
        self.dispatch_ready(now);
        let resolved = self.harvest(now);

        if let Some(m) = &self.metrics {
            m.queue_depth
                .set((self.door.depth() + self.ready.len()) as f64);
            m.hosts_up.set(
                self.hosts
                    .iter()
                    .filter(|h| h.state() == HostState::Up)
                    .count() as f64,
            );
            for host in &mut self.hosts {
                m.set_host_gauges(host, now);
            }
        }
        resolved
    }

    fn up_hosts(&self) -> usize {
        self.hosts
            .iter()
            .filter(|h| h.state() == HostState::Up)
            .count()
    }

    fn roll_chaos(&mut self) {
        let Some(injector) = &self.injector else {
            return;
        };
        if self.stats.host_kills >= self.cfg.max_kills || self.up_hosts() < 2 {
            return;
        }
        let candidates: Vec<usize> = self
            .hosts
            .iter()
            .filter(|h| h.state() == HostState::Up)
            .map(|h| h.id())
            .collect();
        for id in candidates {
            if injector.roll_host_kill(id, self.tick) {
                self.kill_host(id);
                // One kill per tick keeps at least one survivor for the
                // resumed work even at aggressive rates.
                break;
            }
        }
    }

    /// Kills host `id` (chaos or explicit): interrupted jobs persist
    /// their checkpoints and are re-queued — front of the line, with
    /// anti-affinity for the dead host — on the next pump.
    pub fn kill_host(&mut self, id: usize) {
        self.stats.host_kills += 1;
        if let Some(m) = &self.metrics {
            m.host_kills.inc();
        }
        let Some(host) = self.hosts.iter_mut().find(|h| h.id() == id) else {
            return;
        };
        if host.state() == HostState::Dead {
            return;
        }
        let now = Instant::now();
        let harvested = host.kill();
        for (job_id, result) in harvested {
            match result.outcome {
                Ok(output) => {
                    // The proof beat the interrupt; count it normally.
                    self.finish_job(job_id, Ok(output.proof), now);
                    if let Some(m) = &self.metrics {
                        m.host_completed(id);
                    }
                }
                Err(_) => self.requeue_after_kill(job_id, id, now),
            }
        }
    }

    fn requeue_after_kill(&mut self, job_id: u64, dead_host: usize, now: Instant) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        job.resumes += 1;
        job.avoid = Some(dead_host);
        job.host = None;
        if job.resumes > self.cfg.max_resumes {
            let resumes = job.resumes;
            self.finish_job(job_id, Err(format!("gave up after {resumes} resumes")), now);
            return;
        }
        self.stats.resumes += 1;
        if let Some(m) = &self.metrics {
            m.resumes.inc();
        }
        // Resumes go to the front: they hold partial work and their
        // deadline clocks are already running.
        self.ready.push_front(job_id);
    }

    fn autoscale(&mut self, now: Instant) {
        let Some(autoscaler) = &mut self.autoscaler else {
            return;
        };
        let inflight: usize = self.hosts.iter().map(|h| h.inflight()).sum();
        let demand = self.door.depth() + self.ready.len() + inflight;
        let active = self
            .hosts
            .iter()
            .filter(|h| matches!(h.state(), HostState::Warming | HostState::Up))
            .count();
        let target = autoscaler.target(now, demand, active);
        let warmup = autoscaler.policy().warmup;
        if target > active {
            for _ in active..target {
                let id = self.hosts.len();
                self.hosts.push(SimHost::start(
                    id,
                    &self.cfg.host,
                    self.cfg.health,
                    now + warmup,
                ));
                self.stats.hosts_started += 1;
            }
        } else if target < active {
            // Retire idle hosts, newest first (their caches are coldest).
            let mut to_drop = active - target;
            for host in self.hosts.iter_mut().rev() {
                if to_drop == 0 {
                    break;
                }
                if matches!(host.state(), HostState::Warming | HostState::Up)
                    && host.inflight() == 0
                {
                    host.begin_drain();
                    to_drop -= 1;
                }
            }
        }
        // Finish draining hosts that have gone idle.
        for host in &mut self.hosts {
            if host.state() == HostState::Draining && host.inflight() == 0 {
                let leftovers = host.retire();
                debug_assert!(leftovers.is_empty());
                self.stats.hosts_retired += 1;
            }
        }
    }

    fn dispatch_ready(&mut self, now: Instant) {
        // Most-urgent-first among already-released jobs (deadline slack;
        // resumes pushed to the front keep their head start on ties).
        let mut ready: Vec<u64> = self.ready.drain(..).collect();
        ready.sort_by_key(|id| {
            let slack = self.jobs.get(id).and_then(|j| {
                j.opts.deadline.map(|d| {
                    (d.as_secs_f64() - now.saturating_duration_since(j.admitted_at).as_secs_f64())
                        * 1e9
                })
            });
            urgency_key(slack)
        });
        let mut leftover = VecDeque::new();
        for id in ready {
            if !self.try_dispatch(id, now) {
                leftover.push_back(id);
            }
        }
        self.ready = leftover;

        // Then pull from the fair-share queue while capacity remains.
        while self.has_free_capacity(now) {
            let Some((_tenant, id)) = self.door.pop() else {
                break;
            };
            if !self.try_dispatch(id, now) {
                self.ready.push_back(id);
                break;
            }
        }
    }

    fn has_free_capacity(&mut self, now: Instant) -> bool {
        self.hosts.iter_mut().any(|h| {
            let v = h.view(now);
            v.state == HostState::Up && v.available && v.inflight < v.capacity
        })
    }

    fn try_dispatch(&mut self, job_id: u64, now: Instant) -> bool {
        let Some(job) = self.jobs.get(&job_id) else {
            return true; // already resolved; drop the stale queue entry
        };
        // Expired deadline: resolve without burning a host slot.
        let remaining = job
            .opts
            .deadline
            .map(|d| d.saturating_sub(now.saturating_duration_since(job.admitted_at)));
        if remaining == Some(Duration::ZERO) {
            self.stats.deadline_missed += 1;
            self.finish_job(job_id, Err(JobError::DeadlineMissed.to_string()), now);
            return true;
        }
        let avoid = job.avoid;
        let views: Vec<HostView> = self.hosts.iter_mut().map(|h| h.view(now)).collect();
        let Some(host_id) = pick_host(&views, avoid) else {
            return false;
        };
        let host = self
            .hosts
            .iter_mut()
            .find(|h| h.id() == host_id)
            .expect("picked host exists");
        let job = self.jobs.get_mut(&job_id).expect("checked above");
        let checkpoint = job
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let build = TaskBuild {
            device: host.primary_device(),
            store: host.store(),
            checkpoint,
            slot: job.slot.clone(),
            interrupt: host.interrupt_flag(),
        };
        let task = match (job.factory)(build) {
            Ok(task) => task,
            Err(e) => {
                self.finish_job(job_id, Err(format!("task build failed: {e}")), now);
                return true;
            }
        };
        let opts = JobOptions {
            priority: job.opts.priority,
            deadline: remaining,
            trace: false,
        };
        match host.submit(job_id, task, opts) {
            Ok(()) => {
                self.jobs.get_mut(&job_id).expect("still present").host = Some(host_id);
                true
            }
            Err(SubmitError::QueueFull { .. }) | Err(SubmitError::ShuttingDown) => false,
        }
    }

    fn harvest(&mut self, now: Instant) -> usize {
        let mut resolved = 0;
        let polled: Vec<(usize, Vec<(u64, gzkp_service::JobResult)>)> = self
            .hosts
            .iter_mut()
            .map(|h| (h.id(), h.poll_finished()))
            .collect();
        for (host_id, results) in polled {
            for (job_id, result) in results {
                resolved += 1;
                match result.outcome {
                    Ok(output) => {
                        if let Some(host) = self.hosts.iter_mut().find(|h| h.id() == host_id) {
                            host.record_outcome(now, true);
                        }
                        if let Some(m) = &self.metrics {
                            m.host_completed(host_id);
                        }
                        self.finish_job(job_id, Ok(output.proof), now);
                    }
                    Err(e) => {
                        if let Some(host) = self.hosts.iter_mut().find(|h| h.id() == host_id) {
                            if host.record_outcome(now, false) {
                                self.stats.host_quarantines += 1;
                            }
                        }
                        if matches!(e, JobError::DeadlineMissed) {
                            self.stats.deadline_missed += 1;
                        }
                        self.finish_job(job_id, Err(e.to_string()), now);
                    }
                }
            }
        }
        resolved
    }

    fn finish_job(&mut self, job_id: u64, outcome: Result<Vec<u8>, String>, now: Instant) {
        let Some(job) = self.jobs.remove(&job_id) else {
            return;
        };
        let ok = outcome.is_ok();
        if ok {
            self.stats.completed += 1;
            self.completion_log.push((job.tenant.clone(), job_id));
        } else {
            self.stats.failed += 1;
        }
        let latency = now.saturating_duration_since(job.admitted_at);
        if let Some(m) = &self.metrics {
            if ok {
                m.completed.inc();
                m.latency.record(latency.as_nanos() as u64);
            } else {
                m.failed.inc();
            }
        }
        self.results.push(ClusterResult {
            id: job_id,
            tenant: job.tenant,
            outcome,
            resumes: job.resumes,
            latency,
        });
    }

    /// Running counters so far.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// `(tenant, job)` pairs in completion order — what the fair-share
    /// property test ratios over.
    pub fn completions(&self) -> &[(String, u64)] {
        &self.completion_log
    }

    /// Latest checkpoint bytes of an unresolved job, if any were
    /// persisted (tests peek at this to decide when to kill a host).
    pub fn job_checkpoint(&self, job_id: u64) -> Option<Vec<u8>> {
        self.jobs
            .get(&job_id)?
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Host a job is currently placed on.
    pub fn job_host(&self, job_id: u64) -> Option<usize> {
        self.jobs.get(&job_id).and_then(|j| j.host)
    }

    /// Jobs admitted but not yet resolved.
    pub fn open_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Pumps until every admitted job resolves (bounded by `timeout`
    /// wall clock; leftovers fail as drain timeouts), stops intake,
    /// retires every host, and reports.
    pub fn drain(mut self, timeout: Duration) -> ClusterOutcome {
        let deadline = Instant::now() + timeout;
        self.door.stop();
        while self.open_jobs() > 0 {
            self.pump();
            if self.open_jobs() == 0 {
                break;
            }
            if Instant::now() > deadline {
                let now = Instant::now();
                let stuck: Vec<u64> = self.jobs.keys().copied().collect();
                for id in stuck {
                    self.finish_job(id, Err("cluster drain timeout".to_string()), now);
                }
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        // Claims held anywhere after every job resolved are leaks.
        let leaked_claims = self.jobs.len()
            + self.ready.len()
            + self.door.depth()
            + self.hosts.iter().map(|h| h.inflight()).sum::<usize>();
        for host in &mut self.hosts {
            let leftovers = host.retire();
            debug_assert!(
                leftovers.is_empty(),
                "claims must be harvested before retire"
            );
        }
        // Final gauge sync so a snapshot taken after the drain shows the
        // terminal host states, not the last mid-run ones.
        if let Some(m) = &self.metrics {
            m.hosts_up.set(0.0);
            m.queue_depth.set(0.0);
            let now = Instant::now();
            for host in &mut self.hosts {
                m.set_host_gauges(host, now);
            }
        }
        let makespan_ns = self
            .hosts
            .iter()
            .filter_map(|h| h.report().utilization.map(|u| u.elapsed_ns))
            .fold(0.0f64, f64::max);
        let tenants = self
            .door
            .tenant_names()
            .into_iter()
            .filter_map(|name| self.door.tenant_stats(&name).map(|s| (name, s)))
            .collect();
        ClusterOutcome {
            results: std::mem::take(&mut self.results),
            stats: self.stats,
            tenants,
            hosts: self.hosts.iter().map(|h| h.report()).collect(),
            makespan_ns,
            leaked_claims,
            chaos: self.injector.as_ref().map(|i| i.summary()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_round_trips_through_vendored_serde() {
        let mut by_tenant = BTreeMap::new();
        by_tenant.insert("batch".to_string(), 5u64);
        by_tenant.insert("zcash".to_string(), 15u64);
        let report = ClusterReportJson {
            completed: 20,
            failed: 1,
            resumes: 2,
            host_kills: 1,
            leaked_claims: 0,
            makespan_ms: 12.5,
            completed_by_tenant: by_tenant,
        };
        let text = serde_json::to_string_pretty(&report).unwrap();
        assert!(text.contains("\"zcash\": 15"), "{text}");
        let back: ClusterReportJson = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
