//! The admission-control front door: per-tenant token-bucket rate
//! limiting in front of a weighted-fair queue.
//!
//! Fairness is classic virtual-time WFQ: each tenant carries a virtual
//! finish time, advanced by `1/weight` per admitted job, and the queue
//! always releases the pending job with the smallest finish time. Under
//! saturation, tenants with weights `3:1` therefore complete work in a
//! `3:1` long-run ratio; an idle tenant's backlog never builds credit
//! (its finish time restarts at the current virtual time), so bursts
//! after idleness don't starve steady tenants.
//!
//! Everything is driven by explicit `Instant`s (`admit_at`) so tests can
//! own the clock; `admit` is the `Instant::now()` convenience.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Token-bucket parameters of one tenant's rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admissions per second.
    pub per_sec: f64,
    /// Burst allowance (bucket capacity, in jobs).
    pub burst: f64,
}

/// One tenant of the front door.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id used at submission.
    pub name: String,
    /// Fair-share weight; under saturation tenants complete work
    /// proportionally to their weights.
    pub weight: f64,
    /// Optional rate limit; `None` admits at any rate (fair share still
    /// applies).
    pub rate: Option<RateLimit>,
}

impl TenantSpec {
    /// A tenant with the given weight and no rate limit.
    pub fn new(name: impl Into<String>, weight: f64) -> Self {
        Self {
            name: name.into(),
            weight,
            rate: None,
        }
    }

    /// Attaches a token-bucket rate limit.
    pub fn with_rate(mut self, per_sec: f64, burst: f64) -> Self {
        self.rate = Some(RateLimit { per_sec, burst });
        self
    }
}

/// Why the front door refused a submission. Typed so callers can
/// distinguish "slow down" ([`AdmissionError::RateLimited`]) from "shed
/// load" ([`AdmissionError::Saturated`]).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The tenant id was never configured.
    UnknownTenant(String),
    /// The tenant's token bucket is empty.
    RateLimited {
        /// The offending tenant.
        tenant: String,
        /// Time until one token refills — the client's backoff hint.
        retry_after: Duration,
    },
    /// The cluster-wide pending queue is full; independent of tenant.
    Saturated {
        /// Jobs currently pending.
        pending: usize,
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The cluster stopped intake.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            AdmissionError::RateLimited {
                tenant,
                retry_after,
            } => write!(
                f,
                "tenant {tenant:?} rate limited; retry in {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            AdmissionError::Saturated { pending, capacity } => {
                write!(f, "cluster queue saturated ({pending}/{capacity} pending)")
            }
            AdmissionError::ShuttingDown => write!(f, "cluster is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
    rate: RateLimit,
}

impl TokenBucket {
    fn new(rate: RateLimit, now: Instant) -> Self {
        Self {
            tokens: rate.burst,
            last: now,
            rate,
        }
    }

    fn try_take(&mut self, now: Instant) -> Result<(), Duration> {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate.per_sec).min(self.rate.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            Err(Duration::from_secs_f64(
                deficit / self.rate.per_sec.max(1e-9),
            ))
        }
    }
}

/// Per-tenant admission counters, for reports and fairness tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs admitted into the fair-share queue.
    pub admitted: u64,
    /// Jobs refused by the tenant's rate limit.
    pub rate_limited: u64,
    /// Jobs popped toward a host.
    pub released: u64,
}

struct TenantState<T> {
    weight: f64,
    bucket: Option<TokenBucket>,
    /// Virtual finish time of this tenant's most recently admitted job.
    last_vft: f64,
    backlog: std::collections::VecDeque<(f64, u64, T)>,
    stats: TenantStats,
}

/// The front door itself: rate limits, then a weighted-fair queue of `T`
/// (the cluster queues job ids).
pub struct FrontDoor<T> {
    tenants: BTreeMap<String, TenantState<T>>,
    /// Current virtual time: the finish time of the last released job.
    v_now: f64,
    seq: u64,
    pending: usize,
    capacity: usize,
    stopped: bool,
}

impl<T> FrontDoor<T> {
    /// Builds a front door over `tenants` with a cluster-wide pending
    /// bound of `capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if a tenant weight is not strictly positive or a name
    /// repeats.
    pub fn new(tenants: &[TenantSpec], capacity: usize) -> Self {
        let now = Instant::now();
        let mut map = BTreeMap::new();
        for spec in tenants {
            assert!(
                spec.weight > 0.0,
                "tenant {:?} weight must be positive",
                spec.name
            );
            let prev = map.insert(
                spec.name.clone(),
                TenantState {
                    weight: spec.weight,
                    bucket: spec.rate.map(|r| TokenBucket::new(r, now)),
                    last_vft: 0.0,
                    backlog: std::collections::VecDeque::new(),
                    stats: TenantStats::default(),
                },
            );
            assert!(prev.is_none(), "duplicate tenant {:?}", spec.name);
        }
        Self {
            tenants: map,
            v_now: 0.0,
            seq: 0,
            pending: 0,
            capacity,
            stopped: false,
        }
    }

    /// [`FrontDoor::admit_at`] with the real clock.
    pub fn admit(&mut self, tenant: &str, item: T) -> Result<(), AdmissionError> {
        self.admit_at(tenant, item, Instant::now())
    }

    /// Runs admission control for one job: saturation bound, then the
    /// tenant's token bucket, then enqueue at virtual finish time
    /// `max(v_now, tenant.last_vft) + 1/weight`.
    ///
    /// # Errors
    ///
    /// Typed backpressure; see [`AdmissionError`].
    pub fn admit_at(&mut self, tenant: &str, item: T, now: Instant) -> Result<(), AdmissionError> {
        if self.stopped {
            return Err(AdmissionError::ShuttingDown);
        }
        if !self.tenants.contains_key(tenant) {
            return Err(AdmissionError::UnknownTenant(tenant.to_string()));
        }
        if self.pending >= self.capacity {
            return Err(AdmissionError::Saturated {
                pending: self.pending,
                capacity: self.capacity,
            });
        }
        let state = self.tenants.get_mut(tenant).expect("checked above");
        if let Some(bucket) = &mut state.bucket {
            if let Err(retry_after) = bucket.try_take(now) {
                state.stats.rate_limited += 1;
                return Err(AdmissionError::RateLimited {
                    tenant: tenant.to_string(),
                    retry_after,
                });
            }
        }
        let vft = self.v_now.max(state.last_vft) + 1.0 / state.weight;
        state.last_vft = vft;
        state.backlog.push_back((vft, self.seq, item));
        state.stats.admitted += 1;
        self.seq += 1;
        self.pending += 1;
        Ok(())
    }

    /// Releases the pending job with the smallest virtual finish time
    /// (submission order breaks ties) and advances virtual time to it.
    pub fn pop(&mut self) -> Option<(String, T)> {
        let (name, _) = self
            .tenants
            .iter()
            .filter_map(|(name, s)| s.backlog.front().map(|&(vft, seq, _)| (name, (vft, seq))))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite vft"))?;
        let name = name.clone();
        let state = self.tenants.get_mut(&name).expect("tenant exists");
        let (vft, _, item) = state.backlog.pop_front().expect("non-empty backlog");
        state.stats.released += 1;
        self.v_now = self.v_now.max(vft);
        self.pending -= 1;
        Some((name, item))
    }

    /// Jobs waiting across all tenants.
    pub fn depth(&self) -> usize {
        self.pending
    }

    /// Stops intake: every further admit returns
    /// [`AdmissionError::ShuttingDown`]; queued jobs still pop.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Admission counters of `tenant`, if configured.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.tenants.get(tenant).map(|s| s.stats)
    }

    /// Tenant names in configuration order (sorted).
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wfq_releases_in_weight_ratio_under_saturation() {
        let tenants = [TenantSpec::new("a", 3.0), TenantSpec::new("b", 1.0)];
        let mut door = FrontDoor::new(&tenants, 1024);
        let now = Instant::now();
        for i in 0..128u64 {
            door.admit_at("a", i, now).unwrap();
            door.admit_at("b", i, now).unwrap();
        }
        let first: Vec<String> = (0..32).map(|_| door.pop().unwrap().0).collect();
        let a = first.iter().filter(|t| *t == "a").count();
        // Exactly 3:1 in the long run; allow one-job edge slack.
        assert!((23..=25).contains(&a), "a got {a}/32 releases");
    }

    #[test]
    fn idle_tenant_gets_no_retroactive_credit() {
        let tenants = [TenantSpec::new("a", 1.0), TenantSpec::new("b", 1.0)];
        let mut door = FrontDoor::new(&tenants, 1024);
        let now = Instant::now();
        // `a` works alone for a while...
        for i in 0..10u64 {
            door.admit_at("a", i, now).unwrap();
            assert_eq!(door.pop().unwrap().0, "a");
        }
        // ...then `b` arrives with a burst: it must not monopolize.
        for i in 0..4u64 {
            door.admit_at("a", 100 + i, now).unwrap();
            door.admit_at("b", i, now).unwrap();
        }
        let order: Vec<String> = (0..8).map(|_| door.pop().unwrap().0).collect();
        let b_in_first_half = order[..4].iter().filter(|t| *t == "b").count();
        assert!(
            (1..=3).contains(&b_in_first_half),
            "release order {order:?} starves someone"
        );
    }

    #[test]
    fn token_bucket_limits_and_reports_retry_after() {
        let tenants = [TenantSpec::new("a", 1.0).with_rate(10.0, 2.0)];
        let mut door = FrontDoor::new(&tenants, 1024);
        let t0 = Instant::now();
        door.admit_at("a", 0u64, t0).unwrap();
        door.admit_at("a", 1, t0).unwrap();
        let err = door.admit_at("a", 2, t0).unwrap_err();
        match err {
            AdmissionError::RateLimited {
                retry_after,
                tenant,
            } => {
                assert_eq!(tenant, "a");
                assert!(retry_after > Duration::ZERO && retry_after <= Duration::from_millis(150));
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // One token refills after 100 ms at 10/s.
        door.admit_at("a", 3, t0 + Duration::from_millis(150))
            .unwrap();
        assert_eq!(door.tenant_stats("a").unwrap().rate_limited, 1);
    }

    #[test]
    fn saturation_and_shutdown_are_typed() {
        let tenants = [TenantSpec::new("a", 1.0)];
        let mut door = FrontDoor::new(&tenants, 2);
        let now = Instant::now();
        door.admit_at("a", 0u64, now).unwrap();
        door.admit_at("a", 1, now).unwrap();
        assert!(matches!(
            door.admit_at("a", 2, now),
            Err(AdmissionError::Saturated {
                pending: 2,
                capacity: 2
            })
        ));
        assert!(matches!(
            door.admit_at("nope", 3, now),
            Err(AdmissionError::UnknownTenant(_))
        ));
        door.stop();
        assert!(matches!(
            door.admit_at("a", 4, now),
            Err(AdmissionError::ShuttingDown)
        ));
        // Queued work still drains after stop.
        assert_eq!(door.pop().unwrap().1, 0);
    }
}
