//! `zkserve` — workload driver for the proving service.
//!
//! ```text
//! zkserve run <workload.json> [--workers N] [--queue N] [--cache-mb N]
//!                             [--deadline-ms N] [--compare]
//!                             [--devices N[,spec]] [--fleet-trace PATH]
//!                             [--chaos SPEC]
//! zkserve example
//! ```
//!
//! `run` parses a proof-request workload file (see
//! `gzkp_workloads::requests` for the format), prepares every request
//! class (circuit synthesis + trusted setup, outside the timed region),
//! replays the stream through the [`gzkp_service::ProvingService`], and
//! reports throughput plus p50/p95/p99 latency. With `--compare` it first
//! replays the same stream as a sequential prove-in-a-loop baseline and
//! prints the speedup; the two runs must produce byte-identical proofs,
//! which `zkserve` asserts.
//!
//! `--devices` switches the service into fleet mode: the value is a
//! device-fleet spec (`2` = two V100s, `2,1080ti` = two 1080 Tis,
//! `v100,1080ti` = one of each; see `gzkp_runtime::parse_devices`). The
//! run then reports per-device utilization (jobs, steals, shards, H2D
//! bytes, kernel occupancy), and `--fleet-trace PATH` additionally writes
//! the fleet's `runtime → dev{n} → {h2d,kernel,d2h}` span trace as JSON
//! for `zkprof render --timeline`.
//!
//! `--chaos` arms the seeded fault injector for the service replay. The
//! spec is `seed[,rate=X][,kernel=X][,transfer=X][,hang=X][,corrupt=X]`
//! `[,dead=I+J]` (see `gzkp_gpu_sim::FaultPlan::parse`): e.g.
//! `--chaos 7,rate=0.1,dead=1` injects every fault kind at 10% per stage
//! with device 1 permanently dead. Chaos implies verify-before-return —
//! every proof is checked against its verifying key before it is
//! surfaced — and the run prints an injected/recovery report. Combined
//! with `--compare`, the byte-identical assertion demonstrates that
//! recovery never changes a proof.
//!
//! `example` prints a starter workload file to stdout.

use gzkp_gpu_sim::v100;
use gzkp_service::{prepare, run_sequential, run_service, ReplayOutcome, ServiceConfig};
use gzkp_workloads::requests::RequestWorkload;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zkserve run <workload.json> [--workers N] [--queue N] [--cache-mb N] \
         [--deadline-ms N] [--compare] [--devices N[,spec]] [--fleet-trace PATH] \
         [--chaos seed[,rate=X][,kernel=X][,transfer=X][,hang=X][,corrupt=X][,dead=I+J]]\n  \
         zkserve example"
    );
    ExitCode::from(2)
}

struct RunArgs {
    path: String,
    cfg: ServiceConfig,
    compare: bool,
    fleet_trace: Option<String>,
}

fn parse_run_args(args: &[String]) -> Option<RunArgs> {
    let mut path = None;
    let mut cfg = ServiceConfig::default();
    let mut compare = false;
    let mut fleet_trace = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => cfg.workers = it.next()?.parse().ok()?,
            "--queue" => cfg.queue_capacity = it.next()?.parse().ok()?,
            "--cache-mb" => cfg.prep_cache_bytes = it.next()?.parse::<u64>().ok()? << 20,
            "--deadline-ms" => {
                cfg.default_deadline = Some(Duration::from_millis(it.next()?.parse().ok()?))
            }
            "--devices" => {
                cfg.devices = match gzkp_runtime::parse_devices(it.next()?) {
                    Ok(devices) => devices,
                    Err(e) => {
                        eprintln!("zkserve: --devices: {e}");
                        return None;
                    }
                }
            }
            "--fleet-trace" => fleet_trace = Some(it.next()?.to_string()),
            "--chaos" => {
                cfg.chaos = match gzkp_gpu_sim::FaultPlan::parse(it.next()?) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("zkserve: --chaos: {e}");
                        return None;
                    }
                }
            }
            "--compare" => compare = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    Some(RunArgs {
        path: path?,
        cfg,
        compare,
        fleet_trace,
    })
}

fn report(label: &str, outcome: &ReplayOutcome) {
    println!(
        "{label:>10}: {:\u{2007}>4} proofs in {:8.1} ms  \u{2192} {:6.2} proofs/s   \
         p50 {:7.1} ms  p95 {:7.1} ms  p99 {:7.1} ms",
        outcome.latencies_ms.len(),
        outcome.total.as_secs_f64() * 1e3,
        outcome.throughput_per_s(),
        outcome.percentile_ms(50.0),
        outcome.percentile_ms(95.0),
        outcome.percentile_ms(99.0),
    );
    if outcome.rejected + outcome.deadline_missed + outcome.failed > 0 {
        println!(
            "{:>10}  rejected {}  deadline-missed {}  failed {}",
            "", outcome.rejected, outcome.deadline_missed, outcome.failed
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => {
            println!("{}", RequestWorkload::example().to_json());
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(run) = parse_run_args(&args[1..]) else {
                return usage();
            };
            let text = match std::fs::read_to_string(&run.path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("zkserve: {}: {e}", run.path);
                    return ExitCode::from(2);
                }
            };
            let workload = match RequestWorkload::from_json(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("zkserve: {}: {e}", run.path);
                    return ExitCode::from(2);
                }
            };
            let device = v100();
            println!(
                "preparing {} request(s) across {} class(es)...",
                workload.total_requests(),
                workload.requests.len()
            );
            let prepared = prepare(&workload, &device);

            let baseline = run.compare.then(|| {
                let b = run_sequential(&prepared, &device);
                report("sequential", &b);
                b
            });
            let outcome = run_service(&prepared, run.cfg.clone(), &device);
            report("service", &outcome);
            if let Some(chaos) = &outcome.chaos {
                println!(
                    "{:>10}: injected {} (kernel {} transfer {} hang {} corrupt {})  \
                     dead-hits {}",
                    "chaos",
                    chaos.injected(),
                    chaos.kernel,
                    chaos.transfer,
                    chaos.hang,
                    chaos.corrupt,
                    chaos.dead_hits,
                );
                if let Some(stats) = &outcome.stats {
                    println!(
                        "{:>10}: retries {}  verify-rejects {}  quarantines {}  \
                         cpu-fallbacks {}  drained {}",
                        "recovery",
                        stats.retries,
                        stats.verify_rejects,
                        stats.quarantines,
                        stats.cpu_fallbacks,
                        stats.drained,
                    );
                }
            }
            if let Some(fleet) = &outcome.fleet {
                print!("{}", fleet.render());
            }
            if let Some(path) = &run.fleet_trace {
                match &outcome.fleet_trace {
                    Some(trace) => {
                        if let Err(e) = std::fs::write(path, trace.to_json()) {
                            eprintln!("zkserve: {path}: {e}");
                            return ExitCode::from(2);
                        }
                        println!("{:>10}: fleet trace written to {path}", "trace");
                    }
                    None => {
                        eprintln!("zkserve: --fleet-trace requires --devices");
                        return ExitCode::from(2);
                    }
                }
            }

            if let Some(baseline) = baseline {
                for (i, (s, b)) in outcome.proofs.iter().zip(&baseline.proofs).enumerate() {
                    if let (Some(s), Some(b)) = (s, b) {
                        assert_eq!(s, b, "request {i}: service proof diverged from baseline");
                    }
                }
                println!(
                    "{:>10}: {:.2}x throughput vs sequential (proofs byte-identical)",
                    "speedup",
                    outcome.throughput_per_s() / baseline.throughput_per_s().max(1e-12)
                );
            }
            if outcome.failed > 0 {
                eprintln!("zkserve: {} request(s) failed", outcome.failed);
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
