//! `zkserve` — workload driver for the proving service.
//!
//! ```text
//! zkserve run <workload.json> [--workers N] [--queue N] [--cache-mb N]
//!                             [--deadline-ms N] [--compare]
//!                             [--devices N[,spec]] [--cross-device]
//!                             [--fleet-trace PATH]
//!                             [--chaos SPEC] [--metrics PATH] [--prom PATH]
//! zkserve top <metrics.json> [--watch SECS]
//! zkserve example [--mixed]
//! ```
//!
//! `run` parses a proof-request workload file (see
//! `gzkp_workloads::requests` for the format — each request class may
//! carry a `"system"` of `"groth16"` or `"plonk"`, so one stream mixes
//! both backends), prepares every request class (circuit synthesis +
//! trusted setup, outside the timed region), replays the stream through
//! the [`gzkp_service::ProvingService`], and reports throughput plus
//! p50/p95/p99 latency. With `--compare` it first replays the same
//! stream as a sequential prove-in-a-loop baseline and prints the
//! speedup; the two runs must produce byte-identical proofs — for
//! Groth16 and PLONK requests alike — which `zkserve` asserts.
//!
//! `--devices` switches the service into fleet mode: the value is a
//! device-fleet spec (`2` = two V100s, `2,1080ti` = two 1080 Tis,
//! `v100,1080ti` = one of each; see `gzkp_runtime::parse_devices`). The
//! run then reports per-device utilization (jobs, steals, shards, H2D
//! bytes, kernel occupancy), and `--fleet-trace PATH` additionally writes
//! the fleet's `runtime → dev{n} → {h2d,kernel,d2h}` span trace as JSON
//! for `zkprof render --timeline`.
//!
//! `--cross-device` (fleet mode only) lets a near-deadline job's MSM
//! stage claim several devices at once and run as bucket-range shards
//! with partial sums merged over the device↔device P2P path — see
//! `DESIGN.md` §15. A job escalates when its deadline slack drops under
//! `gzkp_runtime::URGENCY_MARGIN`× its modeled remaining MSM cost, so
//! pair the flag with a tight `--deadline-ms`. Proof bytes are identical
//! either way; the P2P traffic shows up in the fleet report and as a
//! `p2p` lane in `zkprof render --timeline`.
//!
//! `--chaos` arms the seeded fault injector for the service replay. The
//! spec is `seed[,rate=X][,kernel=X][,transfer=X][,hang=X][,corrupt=X]`
//! `[,dead=I+J]` (see `gzkp_gpu_sim::FaultPlan::parse`): e.g.
//! `--chaos 7,rate=0.1,dead=1` injects every fault kind at 10% per stage
//! with device 1 permanently dead. Chaos implies verify-before-return —
//! every proof is checked against its verifying key before it is
//! surfaced — and the run prints an injected/recovery report. Combined
//! with `--compare`, the byte-identical assertion demonstrates that
//! recovery never changes a proof.
//!
//! `--metrics PATH` arms the live observability layer: the service and
//! fleet register their counters, gauges, and latency histograms in a
//! [`gzkp_telemetry::MetricsRegistry`], a background exporter rewrites
//! `PATH` as a JSON [`gzkp_telemetry::MetricsSnapshot`] every 500 ms
//! while the replay runs (so `zkserve top PATH --watch 1` in another
//! terminal is a live dashboard), and the final snapshot — with an
//! embedded SLO report — is written on completion. `--prom PATH`
//! additionally writes the snapshot in Prometheus text exposition
//! format on the same cadence.
//!
//! `--cluster hosts=N` replays the workload through the multi-host
//! cluster layer instead of a single service: N simulated hosts (each a
//! full proving service over the `--devices` fleet) behind the
//! fair-share front door, with every job running as a checkpointing
//! task. `--chaos seed,hostkill=X` arms host-kill chaos at this level —
//! a killed host's in-flight jobs resume from their persisted
//! checkpoints on survivors, and `--compare` asserts the final proofs
//! are byte-identical to direct sequential proves anyway. The run
//! prints per-host accounting, front-door tenant stats, and a JSON
//! summary; with `--metrics` the snapshot gains cluster rows in
//! `zkserve top` and a cluster lost-jobs section in the SLO report.
//!
//! `top` renders a metrics snapshot file as an ASCII dashboard (job
//! counts, queue/stage/e2e latency percentiles, SLO status, per-device
//! utilization bars; cluster and per-host rows when the snapshot has
//! them). `--watch SECS` clears the screen and re-renders every
//! interval until interrupted.
//!
//! `example` prints a starter workload file to stdout; `example --mixed`
//! prints one that interleaves Groth16 and PLONK request classes.

use gzkp_cluster::{
    workload_factory, Cluster, ClusterConfig, ClusterJobOptions, HostConfig, TenantSpec,
};
use gzkp_gpu_sim::v100;
use gzkp_service::{
    prepare, run_sequential, run_service, PreparedWorkload, ReplayOutcome, ServiceConfig,
};
use gzkp_telemetry::{render_top, MetricsRegistry, MetricsSnapshot, SloTracker, SnapshotExporter};
use gzkp_workloads::requests::RequestWorkload;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zkserve run <workload.json> [--workers N] [--queue N] [--cache-mb N] \
         [--deadline-ms N] [--compare] [--devices N[,spec]] [--cross-device] [--fleet-trace PATH] \
         [--chaos seed[,rate=X][,kernel=X][,transfer=X][,hang=X][,corrupt=X][,hostkill=X][,dead=I+J]] \
         [--cluster hosts=N] [--metrics PATH] [--prom PATH]\n  \
         zkserve top <metrics.json> [--watch SECS]\n  \
         zkserve example [--mixed]"
    );
    ExitCode::from(2)
}

struct RunArgs {
    path: String,
    cfg: ServiceConfig,
    compare: bool,
    fleet_trace: Option<String>,
    metrics: Option<String>,
    prom: Option<String>,
    cluster_hosts: Option<usize>,
}

/// Parses a `--cluster` spec: `hosts=N` (or bare `N`).
fn parse_cluster_spec(spec: &str) -> Option<usize> {
    let n: usize = spec.strip_prefix("hosts=").unwrap_or(spec).parse().ok()?;
    (n >= 1).then_some(n)
}

fn parse_run_args(args: &[String]) -> Option<RunArgs> {
    let mut path = None;
    let mut cfg = ServiceConfig::default();
    let mut compare = false;
    let mut fleet_trace = None;
    let mut metrics = None;
    let mut prom = None;
    let mut cluster_hosts = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => cfg.workers = it.next()?.parse().ok()?,
            "--queue" => cfg.queue_capacity = it.next()?.parse().ok()?,
            "--cache-mb" => cfg.prep_cache_bytes = it.next()?.parse::<u64>().ok()? << 20,
            "--deadline-ms" => {
                cfg.default_deadline = Some(Duration::from_millis(it.next()?.parse().ok()?))
            }
            "--devices" => {
                cfg.devices = match gzkp_runtime::parse_devices(it.next()?) {
                    Ok(devices) => devices,
                    Err(e) => {
                        eprintln!("zkserve: --devices: {e}");
                        return None;
                    }
                }
            }
            "--fleet-trace" => fleet_trace = Some(it.next()?.to_string()),
            "--metrics" => metrics = Some(it.next()?.to_string()),
            "--prom" => prom = Some(it.next()?.to_string()),
            "--chaos" => {
                cfg.chaos = match gzkp_gpu_sim::FaultPlan::parse(it.next()?) {
                    Ok(plan) => Some(plan),
                    Err(e) => {
                        eprintln!("zkserve: --chaos: {e}");
                        return None;
                    }
                }
            }
            "--cluster" => {
                cluster_hosts = Some(match parse_cluster_spec(it.next()?) {
                    Some(n) => n,
                    None => {
                        eprintln!("zkserve: --cluster: expected hosts=N with N >= 1");
                        return None;
                    }
                })
            }
            "--compare" => compare = true,
            "--cross-device" => cfg.cross_device = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    if prom.is_some() && metrics.is_none() {
        eprintln!("zkserve: --prom requires --metrics");
        return None;
    }
    if cfg.cross_device && cfg.devices.len() < 2 {
        eprintln!("zkserve: --cross-device requires --devices with at least two devices");
        return None;
    }
    if cluster_hosts.is_some() && fleet_trace.is_some() {
        eprintln!("zkserve: --fleet-trace is not available in --cluster mode");
        return None;
    }
    Some(RunArgs {
        path: path?,
        cfg,
        compare,
        fleet_trace,
        metrics,
        prom,
        cluster_hosts,
    })
}

/// Replays the prepared workload through the multi-host cluster layer
/// (`--cluster hosts=N`): every request is submitted as a checkpointing
/// task through the front door, hosts are killed/resumed per `--chaos
/// hostkill=X`, and the run reports per-host accounting plus a JSON
/// summary.
fn run_cluster(run: &RunArgs, prepared: Arc<PreparedWorkload>, hosts: usize) -> ExitCode {
    let jobs = prepared.len();
    // Chaos implies verify-before-return, matching single-host `run`.
    let verify = run.cfg.chaos.is_some();
    let registry = run
        .metrics
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));
    let exporter = run.metrics.as_ref().map(|path| {
        SnapshotExporter::start(
            registry.clone().expect("registry exists with --metrics"),
            Some(SloTracker::new(gzkp_telemetry::SloPolicy::default())),
            path,
            run.prom.as_ref().map(Into::into),
            Duration::from_millis(500),
        )
    });
    let devices = if run.cfg.devices.is_empty() {
        vec![v100()]
    } else {
        run.cfg.devices.clone()
    };
    let mut cluster = Cluster::start(ClusterConfig {
        hosts,
        host: HostConfig {
            devices,
            queue_capacity: run.cfg.queue_capacity.max(1),
            prep_cache_bytes: run.cfg.prep_cache_bytes,
        },
        tenants: vec![TenantSpec::new("default", 1.0)],
        pending_capacity: jobs.max(256),
        chaos: run.cfg.chaos.clone(),
        metrics: registry,
        ..ClusterConfig::default()
    });
    let mut ids = Vec::with_capacity(jobs);
    for i in 0..jobs {
        let opts = prepared.request_options(i);
        match cluster.submit(
            "default",
            workload_factory(prepared.clone(), i, verify),
            ClusterJobOptions {
                priority: opts.priority,
                deadline: opts.deadline.or(run.cfg.default_deadline),
            },
        ) {
            Ok(id) => ids.push(id),
            Err(e) => {
                eprintln!("zkserve: request {i} rejected: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = cluster.drain(Duration::from_secs(600));

    let stats = outcome.stats;
    println!(
        "{:>10}: {hosts} host(s)  {jobs} job(s)  completed {}  failed {}  resumes {}  \
         host-kills {}  leaked-claims {}",
        "cluster",
        stats.completed,
        stats.failed,
        stats.resumes,
        stats.host_kills,
        outcome.leaked_claims,
    );
    println!(
        "{:>10}: makespan {:8.1} ms (simulated)  \u{2192} {:6.2} proofs/s",
        "cluster",
        outcome.makespan_ns / 1e6,
        stats.completed as f64 / (outcome.makespan_ns / 1e9).max(1e-12),
    );
    for h in &outcome.hosts {
        println!(
            "{:>10}: h{} {:<8} completed {:>4}  failed {:>3}{}",
            "host",
            h.id,
            format!("{:?}", h.state).to_lowercase(),
            h.completed,
            h.failed,
            if h.killed { "  [killed]" } else { "" },
        );
    }
    for (tenant, ts) in &outcome.tenants {
        println!(
            "{:>10}: {tenant}  admitted {}  rate-limited {}  released {}",
            "tenant", ts.admitted, ts.rate_limited, ts.released,
        );
    }
    println!("{}", outcome.report_json());

    if let Some(exporter) = exporter {
        let path = run.metrics.as_deref().unwrap_or("");
        match exporter.stop() {
            Ok(snapshot) => {
                if let Some(slo) = &snapshot.slo {
                    let line = slo.render();
                    println!("{:>10}: {}", "slo", line.trim_start_matches("slo: "));
                }
                println!("{:>10}: metrics snapshot written to {path}", "metrics");
            }
            Err(e) => {
                eprintln!("zkserve: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if run.compare {
        let device = v100();
        for (i, &id) in ids.iter().enumerate() {
            let direct = prepared.prove_direct(i, &device);
            let result = outcome
                .results
                .iter()
                .find(|r| r.id == id)
                .expect("every submitted job resolves");
            match &result.outcome {
                Ok(proof) => assert_eq!(
                    proof, &direct,
                    "request {i}: cluster proof diverged from direct prove"
                ),
                Err(e) => {
                    eprintln!("zkserve: request {i} failed in cluster mode: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "{:>10}: {} proof(s) byte-identical to direct proves",
            "compare",
            ids.len()
        );
    }

    if stats.failed > 0 || outcome.leaked_claims > 0 {
        eprintln!(
            "zkserve: cluster run unhealthy: {} failed, {} leaked claim(s)",
            stats.failed, outcome.leaked_claims
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parses `top <metrics.json> [--watch SECS]`.
fn parse_top_args(args: &[String]) -> Option<(String, Option<u64>)> {
    let mut path = None;
    let mut watch = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--watch" => {
                let secs: u64 = it.next()?.parse().ok()?;
                watch = Some(secs.max(1));
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    Some((path?, watch))
}

/// Reads and renders one dashboard frame from a metrics snapshot file.
fn top_frame(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let snap = MetricsSnapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(render_top(&snap))
}

fn report(label: &str, outcome: &ReplayOutcome) {
    println!(
        "{label:>10}: {:\u{2007}>4} proofs in {:8.1} ms  \u{2192} {:6.2} proofs/s   \
         p50 {:7.1} ms  p95 {:7.1} ms  p99 {:7.1} ms",
        outcome.latencies_ms.len(),
        outcome.total.as_secs_f64() * 1e3,
        outcome.throughput_per_s(),
        outcome.percentile_ms(50.0),
        outcome.percentile_ms(95.0),
        outcome.percentile_ms(99.0),
    );
    if outcome.rejected + outcome.deadline_missed + outcome.failed > 0 {
        println!(
            "{:>10}  rejected {}  deadline-missed {}  failed {}",
            "", outcome.rejected, outcome.deadline_missed, outcome.failed
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => match args.get(1).map(String::as_str) {
            None => {
                println!("{}", RequestWorkload::example().to_json());
                ExitCode::SUCCESS
            }
            Some("--mixed") => {
                println!("{}", RequestWorkload::mixed_example().to_json());
                ExitCode::SUCCESS
            }
            Some(_) => usage(),
        },
        Some("top") => {
            let Some((path, watch)) = parse_top_args(&args[1..]) else {
                return usage();
            };
            match watch {
                None => match top_frame(&path) {
                    Ok(frame) => {
                        print!("{frame}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("zkserve: {e}");
                        ExitCode::from(2)
                    }
                },
                Some(secs) => loop {
                    // Clear the screen and home the cursor between frames;
                    // a transiently unreadable file (the exporter may be
                    // mid-rewrite) just skips one refresh.
                    match top_frame(&path) {
                        Ok(frame) => print!("\x1b[2J\x1b[H{frame}"),
                        Err(e) => eprintln!("zkserve: {e}"),
                    }
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                    std::thread::sleep(Duration::from_secs(secs));
                },
            }
        }
        Some("run") => {
            let Some(run) = parse_run_args(&args[1..]) else {
                return usage();
            };
            let text = match std::fs::read_to_string(&run.path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("zkserve: {}: {e}", run.path);
                    return ExitCode::from(2);
                }
            };
            let workload = match RequestWorkload::from_json(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("zkserve: {}: {e}", run.path);
                    return ExitCode::from(2);
                }
            };
            let device = v100();
            println!(
                "preparing {} request(s) across {} class(es)...",
                workload.total_requests(),
                workload.requests.len()
            );
            let prepared = prepare(&workload, &device);

            if let Some(hosts) = run.cluster_hosts {
                return run_cluster(&run, Arc::new(prepared), hosts);
            }

            let baseline = run.compare.then(|| {
                let b = run_sequential(&prepared, &device);
                report("sequential", &b);
                b
            });
            let mut cfg = run.cfg.clone();
            let exporter = run.metrics.as_ref().map(|path| {
                let registry = Arc::new(MetricsRegistry::new());
                cfg.metrics = Some(registry.clone());
                SnapshotExporter::start(
                    registry,
                    Some(SloTracker::new(gzkp_telemetry::SloPolicy::default())),
                    path,
                    run.prom.as_ref().map(Into::into),
                    Duration::from_millis(500),
                )
            });
            let outcome = run_service(&prepared, cfg, &device);
            report("service", &outcome);
            if let Some(exporter) = exporter {
                let path = run.metrics.as_deref().unwrap_or("");
                match exporter.stop() {
                    Ok(snapshot) => {
                        if let Some(slo) = &snapshot.slo {
                            // `render()` carries its own `slo:` prefix.
                            let line = slo.render();
                            println!("{:>10}: {}", "slo", line.trim_start_matches("slo: "));
                        }
                        println!("{:>10}: metrics snapshot written to {path}", "metrics");
                        if let Some(prom) = &run.prom {
                            println!("{:>10}: prometheus exposition written to {prom}", "metrics");
                        }
                    }
                    Err(e) => {
                        eprintln!("zkserve: {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(chaos) = &outcome.chaos {
                println!(
                    "{:>10}: injected {} (kernel {} transfer {} hang {} corrupt {})  \
                     dead-hits {}",
                    "chaos",
                    chaos.injected(),
                    chaos.kernel,
                    chaos.transfer,
                    chaos.hang,
                    chaos.corrupt,
                    chaos.dead_hits,
                );
                if let Some(stats) = &outcome.stats {
                    println!(
                        "{:>10}: retries {}  verify-rejects {}  quarantines {}  \
                         cpu-fallbacks {}  drained {}",
                        "recovery",
                        stats.retries,
                        stats.verify_rejects,
                        stats.quarantines,
                        stats.cpu_fallbacks,
                        stats.drained,
                    );
                }
            }
            if let Some(fleet) = &outcome.fleet {
                print!("{}", fleet.render());
            }
            if let Some(path) = &run.fleet_trace {
                match &outcome.fleet_trace {
                    Some(trace) => {
                        if let Err(e) = std::fs::write(path, trace.to_json()) {
                            eprintln!("zkserve: {path}: {e}");
                            return ExitCode::from(2);
                        }
                        println!("{:>10}: fleet trace written to {path}", "trace");
                    }
                    None => {
                        eprintln!("zkserve: --fleet-trace requires --devices");
                        return ExitCode::from(2);
                    }
                }
            }

            if let Some(baseline) = baseline {
                for (i, (s, b)) in outcome.proofs.iter().zip(&baseline.proofs).enumerate() {
                    if let (Some(s), Some(b)) = (s, b) {
                        assert_eq!(s, b, "request {i}: service proof diverged from baseline");
                    }
                }
                println!(
                    "{:>10}: {:.2}x throughput vs sequential (proofs byte-identical)",
                    "speedup",
                    outcome.throughput_per_s() / baseline.throughput_per_s().max(1e-12)
                );
            }
            if outcome.failed > 0 {
                eprintln!("zkserve: {} request(s) failed", outcome.failed);
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn run_args_parse_metrics_flags() {
        let run = parse_run_args(&s(&["w.json", "--metrics", "m.json"])).unwrap();
        assert_eq!(run.metrics.as_deref(), Some("m.json"));
        assert!(run.prom.is_none());
        let run =
            parse_run_args(&s(&["w.json", "--metrics", "m.json", "--prom", "m.prom"])).unwrap();
        assert_eq!(run.prom.as_deref(), Some("m.prom"));
        assert!(
            parse_run_args(&s(&["w.json", "--prom", "m.prom"])).is_none(),
            "--prom without --metrics is rejected"
        );
        let run = parse_run_args(&s(&["w.json"])).unwrap();
        assert!(run.metrics.is_none());
    }

    #[test]
    fn run_args_parse_cross_device() {
        let run = parse_run_args(&s(&["w.json", "--devices", "2", "--cross-device"])).unwrap();
        assert!(run.cfg.cross_device);
        assert_eq!(run.cfg.devices.len(), 2);
        let run = parse_run_args(&s(&["w.json", "--devices", "2"])).unwrap();
        assert!(!run.cfg.cross_device, "cross-device placement is opt-in");
        assert!(
            parse_run_args(&s(&["w.json", "--cross-device"])).is_none(),
            "--cross-device without a multi-device fleet is rejected"
        );
    }

    #[test]
    fn run_args_parse_cluster() {
        let run = parse_run_args(&s(&["w.json", "--cluster", "hosts=4"])).unwrap();
        assert_eq!(run.cluster_hosts, Some(4));
        let run = parse_run_args(&s(&["w.json", "--cluster", "2"])).unwrap();
        assert_eq!(run.cluster_hosts, Some(2));
        assert!(
            parse_run_args(&s(&["w.json", "--cluster", "hosts=0"])).is_none(),
            "a cluster needs at least one host"
        );
        assert!(
            parse_run_args(&s(&["w.json", "--cluster", "2", "--fleet-trace", "t.json"])).is_none(),
            "fleet traces are per-service, not per-cluster"
        );
        let run = parse_run_args(&s(&["w.json"])).unwrap();
        assert!(run.cluster_hosts.is_none());
    }

    #[test]
    fn top_args_parse() {
        assert_eq!(
            parse_top_args(&s(&["m.json"])),
            Some(("m.json".into(), None))
        );
        assert_eq!(
            parse_top_args(&s(&["m.json", "--watch", "2"])),
            Some(("m.json".into(), Some(2)))
        );
        assert_eq!(
            parse_top_args(&s(&["--watch", "0", "m.json"])),
            Some(("m.json".into(), Some(1))),
            "watch interval is clamped to at least 1s"
        );
        assert!(parse_top_args(&s(&[])).is_none());
        assert!(parse_top_args(&s(&["m.json", "--bogus"])).is_none());
        assert!(parse_top_args(&s(&["m.json", "--watch", "x"])).is_none());
    }
}
