//! `zkprof` — render and diff GZKP prover traces.
//!
//! ```text
//! zkprof render <trace.json> [--timeline]
//! zkprof diff <base.json> <new.json> [--threshold <fraction>]
//! ```
//!
//! `render` pretty-prints the span tree of a `gzkp-trace.json` with the
//! same per-stage kernel tables the benches print. `render --timeline`
//! instead draws a fleet trace's per-device command streams (`runtime →
//! dev{n} → {h2d,kernel,d2h}`, as written by `zkserve --fleet-trace`) as
//! aligned ASCII rows on one time axis, making transfer/compute overlap
//! across devices visible at a glance. `diff` compares two traces
//! span-by-span and exits with status 1 when any stage slowed down by
//! more than the threshold (default 5%) or the span trees no longer line
//! up — so it can gate CI on performance regressions.

use std::process::ExitCode;

use gzkp_telemetry::{diff_traces, render_timeline, render_trace, Trace, TraceError};

const DEFAULT_THRESHOLD: f64 = 0.05;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zkprof render <trace.json> [--timeline]\n  \
         zkprof diff <base.json> <new.json> [--threshold <fraction>]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, ExitCode> {
    match Trace::read_from(path) {
        Ok(t) => Ok(t),
        Err(TraceError::SchemaVersion { found, expected }) => {
            eprintln!("zkprof: {path}: trace schema v{found}, this tool reads v{expected}");
            Err(ExitCode::from(2))
        }
        Err(e) => {
            eprintln!("zkprof: {path}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("render") => {
            let Some((path, timeline)) = parse_render_args(&args[1..]) else {
                return usage();
            };
            let trace = match load(&path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            if timeline {
                match render_timeline(&trace) {
                    Some(text) => print!("{text}"),
                    None => {
                        eprintln!(
                            "zkprof: {path}: no `runtime` device lanes — not a fleet trace \
                             (produce one with `zkserve run … --devices N --fleet-trace …`)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                print!("{}", render_trace(&trace));
            }
            ExitCode::SUCCESS
        }
        Some("diff") => {
            let (paths, threshold) = match parse_diff_args(&args[1..]) {
                Some(v) => v,
                None => return usage(),
            };
            let base = match load(&paths.0) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let new = match load(&paths.1) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let diff = diff_traces(&base, &new, threshold);
            print!("{}", diff.render());
            if diff.is_regression() {
                eprintln!(
                    "zkprof: regression: {} stage(s), {} counter(s), {} histogram(s) \
                     beyond {:.1}% and/or shape mismatch",
                    diff.regressions().len(),
                    diff.counter_regressions().len(),
                    diff.histogram_regressions().len(),
                    threshold * 100.0
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

/// Parses `<trace.json> [--timeline]`.
fn parse_render_args(rest: &[String]) -> Option<(String, bool)> {
    let mut path = None;
    let mut timeline = false;
    for arg in rest {
        match arg.as_str() {
            "--timeline" => timeline = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    Some((path?, timeline))
}

/// Parses `<base> <new> [--threshold <fraction>]`.
fn parse_diff_args(rest: &[String]) -> Option<((String, String), f64)> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            threshold = it.next()?.parse().ok()?;
            if !threshold.is_finite() || threshold < 0.0 {
                return None;
            }
        } else if arg.starts_with("--") {
            return None;
        } else {
            paths.push(arg);
        }
    }
    let [base, new] = paths.as_slice() else {
        return None;
    };
    Some((((*base).clone(), (*new).clone()), threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn render_args_parse() {
        assert_eq!(
            parse_render_args(&s(&["t.json"])),
            Some(("t.json".into(), false))
        );
        assert_eq!(
            parse_render_args(&s(&["t.json", "--timeline"])),
            Some(("t.json".into(), true))
        );
        assert_eq!(
            parse_render_args(&s(&["--timeline", "t.json"])),
            Some(("t.json".into(), true))
        );
        assert!(parse_render_args(&s(&[])).is_none());
        assert!(parse_render_args(&s(&["t.json", "--bogus"])).is_none());
        assert!(parse_render_args(&s(&["a.json", "b.json"])).is_none());
    }

    #[test]
    fn diff_args_default_threshold() {
        let ((b, n), t) = parse_diff_args(&s(&["a.json", "b.json"])).unwrap();
        assert_eq!(b, "a.json");
        assert_eq!(n, "b.json");
        assert_eq!(t, DEFAULT_THRESHOLD);
    }

    #[test]
    fn diff_args_explicit_threshold() {
        let (_, t) = parse_diff_args(&s(&["a.json", "b.json", "--threshold", "0.25"])).unwrap();
        assert_eq!(t, 0.25);
    }

    #[test]
    fn diff_args_rejects_bad_input() {
        assert!(parse_diff_args(&s(&["a.json"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "c.json"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "--bogus"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "--threshold", "-1"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "--threshold", "nan"])).is_none());
    }
}
