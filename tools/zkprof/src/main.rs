//! `zkprof` — render and diff GZKP prover traces.
//!
//! ```text
//! zkprof render <trace.json> [--timeline]
//! zkprof diff <base.json> <new.json> [--threshold <fraction>]
//! zkprof flame <trace.json> [-o <out.folded>]
//! zkprof slo <metrics.json> [--max-miss-rate F] [--max-queue-p99-ms F]
//!                           [--max-quarantine-frac F]
//! ```
//!
//! `render` pretty-prints the span tree of a `gzkp-trace.json` with the
//! same per-stage kernel tables the benches print. `render --timeline`
//! instead draws a fleet trace's per-device command streams (`runtime →
//! dev{n} → {h2d,kernel,d2h,p2p}`, as written by `zkserve --fleet-trace`)
//! as aligned ASCII rows on one time axis, making transfer/compute
//! overlap across devices visible at a glance. Lane glyphs: `=` H2D
//! uploads, `#` kernels, `-` D2H downloads, `^` device↔device P2P
//! transfers (the cross-device MSM's partial-sum merges; the lane only
//! appears when a run used it), `!` health events. `diff` compares two traces
//! span-by-span and exits with status 1 when any stage slowed down by
//! more than the threshold (default 5%) or the span trees no longer line
//! up — so it can gate CI on performance regressions.
//!
//! `flame` exports a trace's span tree in the flamegraph "folded" stack
//! format (`frame;frame count` per line, counts in self-time
//! nanoseconds), ready for `flamegraph.pl`, inferno, or speedscope;
//! `-o PATH` writes to a file instead of stdout. `slo` evaluates a
//! metrics snapshot (as written by `zkserve run --metrics`) against SLO
//! thresholds and exits with status 1 on any burn-rate alert — the CI
//! gate for chaos smoke runs. Flags override the default policy; pass
//! `--max-miss-rate 0` to require a run with zero deadline misses.

use std::process::ExitCode;

use gzkp_telemetry::{
    diff_traces, folded_stacks, render_timeline, render_trace, MetricsSnapshot, SloPolicy,
    SloTracker, Trace, TraceError,
};

const DEFAULT_THRESHOLD: f64 = 0.05;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zkprof render <trace.json> [--timeline]\n  \
         zkprof diff <base.json> <new.json> [--threshold <fraction>]\n  \
         zkprof flame <trace.json> [-o <out.folded>]\n  \
         zkprof slo <metrics.json> [--max-miss-rate F] [--max-queue-p99-ms F] \
         [--max-quarantine-frac F] [--max-cluster-lost N]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, ExitCode> {
    match Trace::read_from(path) {
        Ok(t) => Ok(t),
        Err(TraceError::SchemaVersion { found, expected }) => {
            eprintln!("zkprof: {path}: trace schema v{found}, this tool reads v{expected}");
            Err(ExitCode::from(2))
        }
        Err(e) => {
            eprintln!("zkprof: {path}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("render") => {
            let Some((path, timeline)) = parse_render_args(&args[1..]) else {
                return usage();
            };
            let trace = match load(&path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            if timeline {
                match render_timeline(&trace) {
                    Some(text) => print!("{text}"),
                    None => {
                        eprintln!(
                            "zkprof: {path}: no `runtime` device lanes — not a fleet trace \
                             (produce one with `zkserve run … --devices N --fleet-trace …`)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                print!("{}", render_trace(&trace));
            }
            ExitCode::SUCCESS
        }
        Some("diff") => {
            let (paths, threshold) = match parse_diff_args(&args[1..]) {
                Some(v) => v,
                None => return usage(),
            };
            let base = match load(&paths.0) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let new = match load(&paths.1) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let diff = diff_traces(&base, &new, threshold);
            print!("{}", diff.render());
            if diff.is_regression() {
                eprintln!(
                    "zkprof: regression: {} stage(s), {} counter(s), {} histogram(s) \
                     beyond {:.1}% and/or shape mismatch",
                    diff.regressions().len(),
                    diff.counter_regressions().len(),
                    diff.histogram_regressions().len(),
                    threshold * 100.0
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("flame") => {
            let Some((path, out)) = parse_flame_args(&args[1..]) else {
                return usage();
            };
            let trace = match load(&path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let folded = folded_stacks(&trace);
            match out {
                Some(out_path) => {
                    if let Err(e) = std::fs::write(&out_path, &folded) {
                        eprintln!("zkprof: {out_path}: {e}");
                        return ExitCode::from(2);
                    }
                    eprintln!("zkprof: folded stacks written to {out_path}");
                }
                None => print!("{folded}"),
            }
            ExitCode::SUCCESS
        }
        Some("slo") => {
            let Some((path, policy)) = parse_slo_args(&args[1..]) else {
                return usage();
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("zkprof: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let snapshot = match MetricsSnapshot::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("zkprof: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let report = SloTracker::new(policy).evaluate(&snapshot);
            println!("{}", report.render());
            if report.healthy {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// Parses `<trace.json> [-o <out.folded>]`.
fn parse_flame_args(rest: &[String]) -> Option<(String, Option<String>)> {
    let mut path = None;
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => out = Some(it.next()?.to_string()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    Some((path?, out))
}

/// Parses `<metrics.json>` plus SLO threshold overrides.
fn parse_slo_args(rest: &[String]) -> Option<(String, SloPolicy)> {
    let mut path = None;
    let mut policy = SloPolicy::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-miss-rate" => {
                let v: f64 = it.next()?.parse().ok()?;
                if !v.is_finite() || v < 0.0 {
                    return None;
                }
                policy.max_deadline_miss_rate = v;
            }
            "--max-queue-p99-ms" => {
                let v: f64 = it.next()?.parse().ok()?;
                if !v.is_finite() || v < 0.0 {
                    return None;
                }
                policy.max_queue_wait_p99_ns = (v * 1e6) as u64;
            }
            "--max-quarantine-frac" => {
                let v: f64 = it.next()?.parse().ok()?;
                if !v.is_finite() || v < 0.0 {
                    return None;
                }
                policy.max_quarantine_frac = v;
            }
            "--max-cluster-lost" => {
                policy.max_cluster_lost_jobs = it.next()?.parse().ok()?;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    Some((path?, policy))
}

/// Parses `<trace.json> [--timeline]`.
fn parse_render_args(rest: &[String]) -> Option<(String, bool)> {
    let mut path = None;
    let mut timeline = false;
    for arg in rest {
        match arg.as_str() {
            "--timeline" => timeline = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => return None,
        }
    }
    Some((path?, timeline))
}

/// Parses `<base> <new> [--threshold <fraction>]`.
fn parse_diff_args(rest: &[String]) -> Option<((String, String), f64)> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            threshold = it.next()?.parse().ok()?;
            if !threshold.is_finite() || threshold < 0.0 {
                return None;
            }
        } else if arg.starts_with("--") {
            return None;
        } else {
            paths.push(arg);
        }
    }
    let [base, new] = paths.as_slice() else {
        return None;
    };
    Some((((*base).clone(), (*new).clone()), threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn render_args_parse() {
        assert_eq!(
            parse_render_args(&s(&["t.json"])),
            Some(("t.json".into(), false))
        );
        assert_eq!(
            parse_render_args(&s(&["t.json", "--timeline"])),
            Some(("t.json".into(), true))
        );
        assert_eq!(
            parse_render_args(&s(&["--timeline", "t.json"])),
            Some(("t.json".into(), true))
        );
        assert!(parse_render_args(&s(&[])).is_none());
        assert!(parse_render_args(&s(&["t.json", "--bogus"])).is_none());
        assert!(parse_render_args(&s(&["a.json", "b.json"])).is_none());
    }

    #[test]
    fn diff_args_default_threshold() {
        let ((b, n), t) = parse_diff_args(&s(&["a.json", "b.json"])).unwrap();
        assert_eq!(b, "a.json");
        assert_eq!(n, "b.json");
        assert_eq!(t, DEFAULT_THRESHOLD);
    }

    #[test]
    fn diff_args_explicit_threshold() {
        let (_, t) = parse_diff_args(&s(&["a.json", "b.json", "--threshold", "0.25"])).unwrap();
        assert_eq!(t, 0.25);
    }

    #[test]
    fn flame_args_parse() {
        assert_eq!(
            parse_flame_args(&s(&["t.json"])),
            Some(("t.json".into(), None))
        );
        assert_eq!(
            parse_flame_args(&s(&["t.json", "-o", "out.folded"])),
            Some(("t.json".into(), Some("out.folded".into())))
        );
        assert!(parse_flame_args(&s(&[])).is_none());
        assert!(parse_flame_args(&s(&["t.json", "--bogus"])).is_none());
    }

    #[test]
    fn slo_args_parse_and_override() {
        let (path, policy) = parse_slo_args(&s(&["m.json"])).unwrap();
        assert_eq!(path, "m.json");
        assert_eq!(policy, SloPolicy::default());
        let (_, policy) = parse_slo_args(&s(&[
            "m.json",
            "--max-miss-rate",
            "0",
            "--max-queue-p99-ms",
            "250",
            "--max-quarantine-frac",
            "0.5",
        ]))
        .unwrap();
        assert_eq!(policy.max_deadline_miss_rate, 0.0);
        assert_eq!(policy.max_queue_wait_p99_ns, 250_000_000);
        assert_eq!(policy.max_quarantine_frac, 0.5);
        assert!(parse_slo_args(&s(&["m.json", "--max-miss-rate", "-1"])).is_none());
        assert!(parse_slo_args(&s(&["m.json", "--max-miss-rate", "nan"])).is_none());
        assert!(parse_slo_args(&s(&["a.json", "b.json"])).is_none());
    }

    #[test]
    fn diff_args_rejects_bad_input() {
        assert!(parse_diff_args(&s(&["a.json"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "c.json"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "--bogus"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "--threshold", "-1"])).is_none());
        assert!(parse_diff_args(&s(&["a.json", "b.json", "--threshold", "nan"])).is_none());
    }
}
