//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`), so this crate implements a *simplified* serde data
//! model that keeps the workspace's existing `serde` call sites compiling
//! unchanged:
//!
//! * [`Serialize`] / [`Deserialize`] traits with the real signatures
//!   (`fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>`),
//!   so hand-written impls (field elements, curve points) work verbatim;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   stand-in (non-generic structs with named fields and unit-variant
//!   enums — everything the workspace derives);
//! * a self-describing [`Value`] tree as the single interchange format.
//!
//! Unlike real serde there is no zero-copy visitor machinery: serializers
//! reduce to "produce a [`Value`]" and deserializers to "consume a
//! [`Value`]". `serde_json` (also vendored) prints and parses that tree.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// Self-describing data tree: the interchange format of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion order preserved (stable JSON output).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the numeric content as `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the numeric content as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Returns the string content, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serializes any [`Serialize`] type to a [`Value`] tree (infallible for
/// the value-based serializers of this stand-in).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ser::ValueSerializer) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Deserializes any [`Deserialize`] type from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, de::DeError> {
    T::deserialize(de::ValueDeserializer(value))
}
