//! Serialization half of the simplified data model: everything reduces to
//! producing a [`Value`] tree.

use crate::de;
use crate::Value;

/// A sink for one serialized value.
///
/// Real serde drives a visitor; this stand-in asks implementors to accept
/// a fully-built [`Value`] tree instead, which is all the workspace needs.
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error: de::Error;

    /// Accepts the serialized tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Types that can serialize themselves.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Uninhabited error of the infallible [`ValueSerializer`].
#[derive(Debug)]
pub enum Never {}

impl std::fmt::Display for Never {
    fn fmt(&self, _: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {}
    }
}

impl de::Error for Never {
    fn custom<T: std::fmt::Display>(_msg: T) -> Self {
        unreachable!("serialization to Value cannot fail")
    }
}

/// Serializer that materializes the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Never;

    fn serialize_value(self, value: Value) -> Result<Value, Never> {
        Ok(value)
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_value(Value::U64(v as u64))
                } else {
                    s.serialize_value(Value::I64(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

// --- composite impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_value(crate::to_value(v)),
            None => s.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(crate::to_value).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

/// String-keyed maps become JSON objects; `BTreeMap` iteration order is
/// already sorted, so the output is stable without extra work.
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), crate::to_value(v)))
                .collect(),
        ))
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(crate::to_value(&self.$idx)),+]))
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
