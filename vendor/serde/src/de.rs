//! Deserialization half of the simplified data model: everything reduces
//! to consuming a [`Value`] tree.

use crate::Value;

/// Deserialization errors, mirroring `serde::de::Error`.
pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// Concrete error of the value-based deserializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A source of one deserialized value.
///
/// Real serde drives visitors; this stand-in asks implementors to hand
/// over a fully-parsed [`Value`] tree instead.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Yields the parsed tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types that can deserialize themselves.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializer over an already-built [`Value`] tree.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

fn reborrow<E: Error>(e: DeError) -> E {
    E::custom(e.0)
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = v
                    .as_u64()
                    .ok_or_else(|| D::Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let n: i64 = match d.take_value()? {
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| D::Error::custom("integer out of range"))?,
                    Value::I64(i) => i,
                    _ => return Err(D::Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()?
            .as_f64()
            .ok_or_else(|| D::Error::custom("expected number"))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            _ => Err(D::Error::custom("expected bool")),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            _ => Err(D::Error::custom("expected string")),
        }
    }
}

/// `&'static str` support for config structs (e.g. device names): the
/// parsed string is interned by leaking. Only small, long-lived config
/// strings in this workspace deserialize through this impl.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

// --- composite impls -------------------------------------------------------

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => crate::from_value(v).map(Some).map_err(reborrow),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| crate::from_value(v).map_err(reborrow))
                .collect(),
            _ => Err(D::Error::custom("expected sequence")),
        }
    }
}

impl<'de, T: Deserialize<'de> + Copy + Default, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = Vec::<T>::deserialize(d)?;
        if v.len() != N {
            return Err(D::Error::custom("wrong array length"));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&v);
        Ok(out)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, crate::from_value(v).map_err(reborrow)?)))
                .collect(),
            _ => Err(D::Error::custom("expected map")),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let items = match d.take_value()? {
                    Value::Seq(items) => items,
                    _ => return Err(D::Error::custom("expected tuple sequence")),
                };
                if items.len() != $len {
                    return Err(D::Error::custom("wrong tuple length"));
                }
                let mut it = items.into_iter();
                Ok(($(
                    {
                        let _ = $idx;
                        crate::from_value::<$name>(it.next().unwrap()).map_err(reborrow)?
                    },
                )+))
            }
        }
    )*};
}
impl_de_tuple! {
    (T0.0 ; 1)
    (T0.0, T1.1 ; 2)
    (T0.0, T1.1, T2.2 ; 3)
    (T0.0, T1.1, T2.2, T3.3 ; 4)
    (T0.0, T1.1, T2.2, T3.3, T4.4 ; 5)
}
