//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). This crate provides `into_par_iter`,
//! `par_iter_mut`, and `par_chunks_mut` with the same call syntax,
//! executed on scoped `std::thread` workers pulling from a shared queue.
//! Work items are materialized eagerly (no splitting/stealing), which is
//! fine for the coarse-grained loops in this workspace: per-window MSM
//! sums and per-chunk NTT butterflies.

use std::sync::Mutex;

/// Number of worker threads used for parallel loops.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn run_parallel<I: Send, F: Fn(I) + Sync>(items: Vec<I>, f: F) {
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let item = queue.lock().unwrap().next();
                match item {
                    Some(item) => f(item),
                    None => break,
                }
            });
        }
    });
}

/// An eagerly-materialized "parallel" iterator.
pub struct ParIter<T>(Vec<T>);

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item across worker threads.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_parallel(self.0, f);
    }

    /// Maps every item across worker threads, preserving order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        let slots: Vec<Mutex<Option<U>>> = (0..self.0.len()).map(|_| Mutex::new(None)).collect();
        let indexed: Vec<(usize, T)> = self.0.into_iter().enumerate().collect();
        run_parallel(indexed, |(i, item)| {
            *slots[i].lock().unwrap() = Some(f(item));
        });
        ParIter(
            slots
                .into_iter()
                .map(|m| m.into_inner().unwrap().expect("map slot filled"))
                .collect(),
        )
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    /// Sums the (already computed) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.0.into_iter().sum()
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented for every iterable.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Materializes the items for parallel consumption.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter(self.into_iter().collect())
    }
}

/// Parallel mutable access to slices (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel counterpart of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter(self.iter_mut().collect())
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter(self.chunks_mut(chunk_size).collect())
    }
}

/// The traits user code glob-imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..100).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunks_mutate_everything() {
        let mut data = vec![1u32; 1000];
        data.par_chunks_mut(7).for_each(|c| {
            for v in c {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn iter_mut_mutates_everything() {
        let mut data = [0u8; 64];
        data.par_iter_mut().for_each(|v| *v = 9);
        assert!(data.iter().all(|&v| v == 9));
    }
}
