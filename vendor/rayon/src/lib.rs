//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). This crate provides `into_par_iter`,
//! `par_iter_mut`, `par_chunks`/`par_chunks_mut`, `enumerate`, `map`,
//! `for_each`, `fold`, and `reduce` with the same call syntax as rayon,
//! executed by a lock-free chunked work distributor:
//!
//! * Work items are materialized eagerly into a contiguous buffer; a
//!   single shared `AtomicUsize` hands out fixed-size *chunks* of indices
//!   (`fetch_add`), so the hot path takes no lock — unlike the previous
//!   Mutex-queue executor, which serialized every item hand-off.
//! * Workers are a small **persistent pool** spawned on first use and
//!   parked on a condvar between jobs; the calling thread always
//!   participates, so a job completes even if every worker is busy.
//! * `GZKP_THREADS` caps the concurrency of each parallel call (`1`
//!   forces fully serial in-place execution). It is re-read per call, so
//!   tests can vary it at runtime.
//! * Nested parallel calls (a parallel region spawned from inside a
//!   worker or from a participating caller) run serially in place — the
//!   pool is never re-entered, which makes nesting deadlock-free.
//!
//! Determinism: chunk boundaries are a pure function of the item count
//! and the thread cap, results are written to per-index or per-chunk
//! slots, and `reduce`/`fold` combine partials in chunk order — so for
//! associative operations every thread count produces identical results.

use std::any::Any;
use std::cell::Cell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Chunks handed out per participating thread: >1 so a straggler chunk
/// does not leave the other threads idle, small enough that the atomic
/// hand-off stays negligible next to the work.
const CHUNKS_PER_THREAD: usize = 4;

thread_local! {
    /// Set while this thread executes inside a parallel region (worker
    /// threads permanently); nested parallel calls then run serially.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads a parallel call may use: the `GZKP_THREADS`
/// environment override when set (minimum 1), else the machine's
/// available parallelism. Re-read on every call.
pub fn current_num_threads() -> usize {
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("GZKP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

// ---------------------------------------------------------------------------
// The chunked executor
// ---------------------------------------------------------------------------

/// One published parallel job: a type-erased `body(start, end)` plus the
/// atomic chunk cursor. The raw `body` pointer is only dereferenced while
/// holding an unclaimed chunk; the publishing caller does not return
/// until all chunks are claimed and no participant is active, which keeps
/// the borrow alive for every dereference.
struct Job {
    body: *const (dyn Fn(usize, usize) + Sync),
    len: usize,
    chunk: usize,
    /// Pool workers admitted to this job (the caller is always extra).
    max_workers: usize,
    /// Next chunk index to claim (lock-free cursor).
    next: AtomicUsize,
    /// Pool workers that have tried to join (admission counter).
    entered: AtomicUsize,
    /// Participants currently inside the drain loop.
    active: AtomicUsize,
    /// Set when a participant panicked; stops further body calls.
    aborted: AtomicBool,
    /// First panic payload, re-thrown on the calling thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    idle: Mutex<()>,
    idle_cv: Condvar,
}

// SAFETY: the raw body pointer is only used under the completion protocol
// described on [`Job`]; all other fields are Send + Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until the cursor is exhausted or the job
    /// aborts. Called by the job's caller and by admitted pool workers.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let start = i.saturating_mul(self.chunk);
            if start >= self.len || self.aborted.load(Ordering::Relaxed) {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            // SAFETY: we hold an unclaimed chunk, so the caller has not
            // returned and the body borrow is still live.
            unsafe { (*self.body)(start, end) };
        }
    }

    /// Exhausts the cursor without running the body (panic cleanup), so
    /// late-arriving workers cannot claim a chunk after the caller leaves.
    fn exhaust(&self) {
        self.aborted.store(true, Ordering::Relaxed);
        while self
            .next
            .fetch_add(1, Ordering::Relaxed)
            .saturating_mul(self.chunk)
            < self.len
        {}
    }

    /// Entry point for pool workers.
    fn run_as_worker(&self) {
        if self.entered.fetch_add(1, Ordering::SeqCst) >= self.max_workers {
            return;
        }
        self.active.fetch_add(1, Ordering::SeqCst);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.drain())) {
            self.exhaust();
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.idle.lock().unwrap();
            self.idle_cv.notify_all();
        }
    }

    /// Blocks until no worker is inside the drain loop. Combined with an
    /// exhausted cursor this guarantees no further body dereference.
    fn wait_idle(&self) {
        let mut guard = self.idle.lock().unwrap();
        while self.active.load(Ordering::SeqCst) != 0 {
            guard = self.idle_cv.wait(guard).unwrap();
        }
    }
}

struct PoolState {
    generation: u64,
    job: Option<std::sync::Arc<Job>>,
}

/// The persistent worker pool: workers park on `work_cv` and wake when a
/// job is published. Only the latest job is broadcast; earlier jobs are
/// always completed by their publishing caller, so dropping a broadcast
/// is harmless.
struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

impl Pool {
    fn publish(&self, job: std::sync::Arc<Job>) {
        let mut st = self.state.lock().unwrap();
        st.generation += 1;
        st.job = Some(job);
        self.work_cv.notify_all();
    }
}

fn worker_loop(pool: &'static Pool) {
    IN_PARALLEL.with(|f| f.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap();
            while st.generation == seen {
                st = pool.work_cv.wait(st).unwrap();
            }
            seen = st.generation;
            st.job.clone()
        };
        if let Some(job) = job {
            job.run_as_worker();
        }
    }
}

/// Lazily spawns the worker pool. Sized for the machine but kept at a
/// minimum of three workers so `GZKP_THREADS` overrides above the core
/// count still execute concurrently (exercised by determinism tests).
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
            }),
            work_cv: Condvar::new(),
        }));
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(0)
            .max(3);
        for _ in 0..workers {
            std::thread::Builder::new()
                .name("gzkp-par-worker".into())
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
        }
        pool
    })
}

/// Chunk size for `len` items at the given thread cap.
fn chunk_size(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.saturating_mul(CHUNKS_PER_THREAD).max(1))
        .max(1)
}

/// Runs `body(start, end)` over disjoint chunks covering `0..len`, using
/// up to `threads` participants (the caller plus pool workers). Serial
/// when `threads <= 1`, when there is a single chunk, or when already
/// inside a parallel region (nesting never re-enters the pool).
fn run_chunked(len: usize, chunk: usize, threads: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    if threads <= 1 || chunk >= len || IN_PARALLEL.with(|f| f.get()) {
        body(0, len);
        return;
    }
    // SAFETY: layout-identical fat pointers; erases the borrow lifetime so
    // the job can live in an Arc shared with 'static workers. The
    // completion protocol (exhausted cursor + wait_idle) keeps every
    // dereference inside the real borrow.
    let body: *const (dyn Fn(usize, usize) + Sync) = unsafe {
        std::mem::transmute::<
            &(dyn Fn(usize, usize) + Sync),
            *const (dyn Fn(usize, usize) + Sync + 'static),
        >(body)
    };
    let job = std::sync::Arc::new(Job {
        body,
        len,
        chunk,
        max_workers: threads - 1,
        next: AtomicUsize::new(0),
        entered: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        aborted: AtomicBool::new(false),
        panic: Mutex::new(None),
        idle: Mutex::new(()),
        idle_cv: Condvar::new(),
    });
    pool().publish(job.clone());
    IN_PARALLEL.with(|f| f.set(true));
    let caller = catch_unwind(AssertUnwindSafe(|| job.drain()));
    IN_PARALLEL.with(|f| f.set(false));
    if caller.is_err() {
        job.exhaust();
    }
    // All chunks are claimed at this point; once the workers go idle no
    // participant can touch `body` again, so the borrow may end.
    job.wait_idle();
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    let worker_panic = job.panic.lock().unwrap().take();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Shared-buffer helpers (disjoint-index access, no locks)
// ---------------------------------------------------------------------------

/// Read-side view of a materialized item buffer: each index is moved out
/// exactly once by the chunk that owns it.
struct TakeSlice<T>(*const ManuallyDrop<T>);
unsafe impl<T: Send> Sync for TakeSlice<T> {}
impl<T> TakeSlice<T> {
    /// SAFETY: each `i` must be taken at most once, `i < len`.
    unsafe fn take(&self, i: usize) -> T {
        ManuallyDrop::into_inner(std::ptr::read(self.0.add(i)))
    }
}

/// Write-side view of an output buffer: each index is written exactly
/// once by the chunk that owns it.
struct WriteSlice<T>(*mut MaybeUninit<T>);
unsafe impl<T: Send> Sync for WriteSlice<T> {}
impl<T> WriteSlice<T> {
    /// SAFETY: each `i` must be written at most once, `i < len`.
    unsafe fn write(&self, i: usize, v: T) {
        (*self.0.add(i)).write(v);
    }
}

/// Wraps the items so a mid-job panic leaks un-taken elements instead of
/// double-dropping the taken ones.
fn into_taken<T>(items: Vec<T>) -> Vec<ManuallyDrop<T>> {
    items.into_iter().map(ManuallyDrop::new).collect()
}

// ---------------------------------------------------------------------------
// The iterator API
// ---------------------------------------------------------------------------

/// An eagerly-materialized "parallel" iterator.
pub struct ParIter<T>(Vec<T>);

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item across the worker pool.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let items = into_taken(self.0);
        let len = items.len();
        let threads = current_num_threads();
        let src = TakeSlice(items.as_ptr());
        run_chunked(len, chunk_size(len, threads), threads, &|start, end| {
            for i in start..end {
                // SAFETY: chunks are disjoint, each index taken once.
                f(unsafe { src.take(i) });
            }
        });
    }

    /// Maps every item across the worker pool, preserving order. Each
    /// output lands in its own pre-allocated slot — no locks.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        let items = into_taken(self.0);
        let len = items.len();
        let threads = current_num_threads();
        let mut out: Vec<MaybeUninit<U>> = (0..len).map(|_| MaybeUninit::uninit()).collect();
        let src = TakeSlice(items.as_ptr());
        let dst = WriteSlice(out.as_mut_ptr());
        run_chunked(len, chunk_size(len, threads), threads, &|start, end| {
            for i in start..end {
                // SAFETY: chunks are disjoint; index i is taken/written once.
                unsafe { dst.write(i, f(src.take(i))) };
            }
        });
        // Every chunk ran to completion, so every slot is initialized.
        ParIter(
            out.into_iter()
                .map(|slot| unsafe { slot.assume_init() })
                .collect(),
        )
    }

    /// Pairs every item with its index (rayon's indexed iteration).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter(self.0.into_iter().enumerate().collect())
    }

    /// Folds each chunk of items into an accumulator seeded by
    /// `identity`, yielding one accumulator per chunk (rayon's `fold`).
    /// Combine them with [`ParIter::reduce`] or sequentially.
    pub fn fold<Acc, ID, F>(self, identity: ID, fold_op: F) -> ParIter<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync,
        F: Fn(Acc, T) -> Acc + Sync,
    {
        let items = into_taken(self.0);
        let len = items.len();
        if len == 0 {
            return ParIter(Vec::new());
        }
        let threads = current_num_threads();
        let chunk = chunk_size(len, threads);
        let n_chunks = len.div_ceil(chunk);
        let mut partials: Vec<MaybeUninit<Acc>> =
            (0..n_chunks).map(|_| MaybeUninit::uninit()).collect();
        let src = TakeSlice(items.as_ptr());
        let dst = WriteSlice(partials.as_mut_ptr());
        run_chunked(len, chunk, threads, &|start, end| {
            let mut acc = identity();
            for i in start..end {
                // SAFETY: chunks are disjoint, each index taken once.
                acc = fold_op(acc, unsafe { src.take(i) });
            }
            // SAFETY: chunk index start/chunk is owned by this call. When
            // the executor falls back to one serial call covering 0..len,
            // that call owns chunk 0 and the remaining slots stay unused.
            unsafe { dst.write(start / chunk, acc) };
        });
        let serial_span = IN_PARALLEL.with(|f| f.get()) || threads <= 1 || chunk >= len;
        let filled = if serial_span { 1 } else { n_chunks };
        ParIter(
            partials
                .into_iter()
                .take(filled)
                .map(|slot| unsafe { slot.assume_init() })
                .collect(),
        )
    }

    /// Reduces all items with `op`, seeding each chunk with `identity`
    /// and combining the per-chunk partials in chunk order (rayon's
    /// `reduce`; deterministic for associative `op`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let partials = self.fold(&identity, &op).0;
        partials.into_iter().fold(identity(), op)
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }

    /// Sums the (already computed) items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.0.into_iter().sum()
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented for every iterable.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Materializes the items for parallel consumption.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter(self.into_iter().collect())
    }
}

/// Parallel shared access to slices (`par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel counterpart of `chunks`.
    fn par_chunks(&self, chunk_len: usize) -> ParIter<&[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_len: usize) -> ParIter<&[T]> {
        ParIter(self.chunks(chunk_len).collect())
    }
}

/// Parallel mutable access to slices (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel counterpart of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_len: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter(self.iter_mut().collect())
    }
    fn par_chunks_mut(&mut self, chunk_len: usize) -> ParIter<&mut [T]> {
        ParIter(self.chunks_mut(chunk_len).collect())
    }
}

/// The traits user code glob-imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0u64..100).map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn chunks_mutate_everything() {
        let mut data = vec![1u32; 1000];
        data.par_chunks_mut(7).for_each(|c| {
            for v in c {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn iter_mut_mutates_everything() {
        let mut data = [0u8; 64];
        data.par_iter_mut().for_each(|v| *v = 9);
        assert!(data.iter().all(|&v| v == 9));
    }

    #[test]
    fn par_chunks_sees_every_chunk() {
        let data: Vec<u32> = (0..100).collect();
        let sums: Vec<u32> = data.par_chunks(7).map(|c| c.iter().sum::<u32>()).collect();
        let expect: Vec<u32> = data.chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let data: Vec<u64> = (1..=1000).collect();
        let par: u64 = data
            .clone()
            .into_par_iter()
            .reduce(|| 0, |a, b| a.wrapping_add(b));
        assert_eq!(par, data.iter().sum::<u64>());
    }

    #[test]
    fn fold_partials_cover_all_items() {
        let data: Vec<u64> = (0..500).collect();
        let total: u64 = data
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .collect::<Vec<u64>>()
            .into_iter()
            .sum();
        assert_eq!(total, (0..500).sum::<u64>());
    }

    #[test]
    fn enumerate_indexes_in_order() {
        let out: Vec<(usize, char)> = "abcd".chars().into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd')]);
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        let out: Vec<u64> = (0u64..16)
            .into_par_iter()
            .map(|x| (0u64..64).into_par_iter().map(|y| x + y).sum::<u64>())
            .collect();
        let expect: Vec<u64> = (0u64..16)
            .map(|x| (0u64..64).map(|y| x + y).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_inputs_are_fine() {
        Vec::<u32>::new().into_par_iter().for_each(|_| panic!());
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x * 2).collect();
        assert!(v.is_empty());
        let r = Vec::<u64>::new().into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(r, 7);
    }
}
