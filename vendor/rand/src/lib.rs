//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible implementations of its external
//! dependencies (see `vendor/README.md`). This crate provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen` and `gen_range`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! Determinism matters more than distribution quality here: seeds produce
//! stable streams across runs and platforms, which is what the tests and
//! the simulated benchmarks rely on. The streams are *not* identical to
//! the real `rand::rngs::StdRng` (ChaCha12), which no code in this
//! workspace depends on.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping is fine for the
                // non-cryptographic uses in this workspace.
                let r = rng.next_u64() as u128 % span;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS entropy; here: a fixed seed mixed with
    /// the monotonic clock, adequate for the non-cryptographic uses in
    /// this workspace.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// One-off uniform value using an entropy-seeded generator.
pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    T::sample(&mut StdRng::from_entropy())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(1..1000);
            assert!((1..1000).contains(&v));
            let w: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unsized_rng_usable() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        takes_dynish(&mut r);
    }
}
