//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Supports exactly the shapes this workspace derives:
//!
//! * non-generic structs with named fields → serialized as a map keyed by
//!   field name;
//! * non-generic enums with unit variants only → serialized as the
//!   variant-name string.
//!
//! Anything else (tuple structs, generics, data-carrying variants, serde
//! attributes) produces a compile error naming the limitation, so misuse
//! is loud rather than silently wrong. Parsing is done directly over the
//! token stream — `syn`/`quote` are not available offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Struct name + named fields.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips `#[...]` attribute groups and visibility modifiers at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind}`"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive stand-in: generic type `{name}` is not supported; \
                 write a manual impl"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "serde_derive stand-in: `{name}` must have a braced body \
                 (tuple/unit structs unsupported), found {other:?}"
            ))
        }
    };

    if kind == "struct" {
        Ok(Shape::Struct(name, parse_named_fields(body)?))
    } else {
        Ok(Shape::Enum(name, parse_unit_variants(body)?))
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}` (tuple structs unsupported), \
                     found {other:?}"
                ))
            }
        }
        // Consume the type: everything until a top-level comma, tracking
        // angle-bracket depth (`<`/`>` are plain puncts, not groups).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "serde_derive stand-in: enum variant `{variant}` must be a unit \
                     variant, found {other:?}"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// `#[derive(Serialize)]` — map-of-fields for structs, name string for
/// unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("__m.push(({f:?}.to_string(), ::serde::to_value(&self.{f})));\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         serializer.serialize_value(::serde::Value::Map(__m))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                         -> ::core::result::Result<S::Ok, S::Error> {{\n\
                         let __s = match self {{ {arms} }};\n\
                         serializer.serialize_value(::serde::Value::Str(__s.to_string()))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// `#[derive(Deserialize)]` — counterpart of the serialize derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {{\n\
                             let __v = __map.iter().find(|(k, _)| k == {f:?})\n\
                                 .map(|(_, v)| v.clone())\n\
                                 .ok_or_else(|| <D::Error as ::serde::de::Error>::custom(\n\
                                     concat!(\"missing field `\", {f:?}, \"`\")))?;\n\
                             ::serde::from_value(__v)\n\
                                 .map_err(|e| <D::Error as ::serde::de::Error>::custom(\n\
                                     format!(\"field `{{}}`: {{}}\", {f:?}, e)))?\n\
                         }},\n"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         let __map = match deserializer.take_value()? {{\n\
                             ::serde::Value::Map(m) => m,\n\
                             _ => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                                 concat!(\"expected map for \", {name:?}))),\n\
                         }};\n\
                         ::core::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                         -> ::core::result::Result<Self, D::Error> {{\n\
                         let __s = match deserializer.take_value()? {{\n\
                             ::serde::Value::Str(s) => s,\n\
                             _ => return Err(<D::Error as ::serde::de::Error>::custom(\n\
                                 concat!(\"expected string for \", {name:?}))),\n\
                         }};\n\
                         match __s.as_str() {{\n\
                             {arms}\
                             other => Err(<D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
