//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). This harness keeps the same source syntax —
//! groups, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — and prints one
//! `group/name  <median ns>/iter` line per benchmark. There is no
//! statistical analysis, HTML report, or baseline storage; each bench
//! runs a short warm-up then a capped measurement loop so the whole
//! suite stays fast enough for CI smoke runs.
//!
//! Set `GZKP_BENCH_MS=<n>` to change the per-benchmark measurement
//! budget (default 50 ms).

use std::time::{Duration, Instant};

fn budget() -> Duration {
    let ms = std::env::var("GZKP_BENCH_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for source compatibility; sampling here is time-budgeted,
    /// not count-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { median_ns: None };
        f(&mut b);
        self.report(&id.into(), b.median_ns);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher { median_ns: None };
        f(&mut b, input);
        self.report(&id.0, b.median_ns);
    }

    /// Ends the group (prints nothing extra; lines were printed as run).
    pub fn finish(self) {}

    fn report(&self, id: &str, median_ns: Option<f64>) {
        match median_ns {
            Some(ns) => println!("{}/{}  {:.1} ns/iter", self.name, id, ns),
            None => println!("{}/{}  (no measurement)", self.name, id),
        }
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then batched timing until
    /// the per-benchmark budget elapses; records the median batch rate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration from a single timed call.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let deadline = Instant::now() + budget();
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

/// Declares a function running each listed benchmark with one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("GZKP_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1u64 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
