//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). This harness keeps the same source syntax —
//! groups, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — and prints one
//! `group/name  <median ns>/iter (±<mad> MAD)` line per benchmark. There
//! is no HTML report or baseline storage, but each bench runs a timed
//! warm-up loop before measuring and reports the median with its median
//! absolute deviation, so callers can tell a stable number from a noisy
//! one. Finished measurements are also collected process-wide; a bench
//! `main` can drain them with [`take_results`] to write its own
//! machine-readable record (the `BENCH_*.json` files of `gzkp-bench`).
//!
//! Set `GZKP_BENCH_MS=<n>` to change the per-benchmark measurement
//! budget (default 50 ms) and `GZKP_BENCH_WARMUP_MS=<n>` the warm-up
//! budget (default 10 ms).

use std::sync::Mutex;
use std::time::{Duration, Instant};

fn env_ms(var: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

fn budget() -> Duration {
    env_ms("GZKP_BENCH_MS", 50)
}

fn warmup_budget() -> Duration {
    env_ms("GZKP_BENCH_WARMUP_MS", 10)
}

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name passed to `benchmark_group`.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-batch samples, nanoseconds.
    pub mad_ns: f64,
    /// Number of measured batches behind the statistics.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process, in run
/// order. Call at the end of a bench `main` to persist the numbers.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap())
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for source compatibility; sampling here is time-budgeted,
    /// not count-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { measured: None };
        f(&mut b);
        self.report(&id.into(), b.measured);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher { measured: None };
        f(&mut b, input);
        self.report(&id.0, b.measured);
    }

    /// Ends the group (prints nothing extra; lines were printed as run).
    pub fn finish(self) {}

    fn report(&self, id: &str, measured: Option<(f64, f64, usize)>) {
        match measured {
            Some((median_ns, mad_ns, samples)) => {
                println!(
                    "{}/{}  {median_ns:.1} ns/iter (±{mad_ns:.1} MAD, {samples} samples)",
                    self.name, id
                );
                RESULTS.lock().unwrap().push(BenchResult {
                    group: self.name.clone(),
                    id: id.to_string(),
                    median_ns,
                    mad_ns,
                    samples,
                });
            }
            None => println!("{}/{}  (no measurement)", self.name, id),
        }
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    measured: Option<(f64, f64, usize)>,
}

impl Bencher {
    /// Measures `routine`: warm-up iterations until the warm-up budget
    /// elapses (at least one, also used to calibrate the batch size),
    /// then batched timing until the measurement budget elapses. Records
    /// the median per-iteration time and its median absolute deviation
    /// across batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: populate caches/branch predictors outside the timed
        // region and learn roughly what one call costs.
        let warm_deadline = Instant::now() + warmup_budget();
        let mut once = Duration::MAX;
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            once = once.min(t0.elapsed().max(Duration::from_nanos(1)));
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        let deadline = Instant::now() + budget();
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mut dev: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
        dev.sort_by(|a, b| a.total_cmp(b));
        let mad = dev[dev.len() / 2];
        self.measured = Some((median, mad, samples.len()));
    }
}

/// Declares a function running each listed benchmark with one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_median_and_mad() {
        std::env::set_var("GZKP_BENCH_MS", "5");
        std::env::set_var("GZKP_BENCH_WARMUP_MS", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1u64 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
        let results = take_results();
        let r = results.iter().find(|r| r.id == "noop").expect("recorded");
        assert_eq!(r.group, "smoke");
        assert!(r.median_ns.is_finite() && r.median_ns >= 0.0);
        assert!(r.mad_ns.is_finite() && r.mad_ns >= 0.0);
        assert!(r.samples >= 1);
    }
}
