//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Value`].
//!
//! Serialization goes through the vendored `serde` crate's [`Value`] tree
//! (see `vendor/README.md`); this crate adds a JSON printer and a strict
//! recursive-descent parser. Floats print via Rust's shortest-roundtrip
//! `Display`, so `f64` values survive `to_string` → `from_str` exactly.

pub use serde::Value;

use serde::de::{DeError, Error as _};
use serde::{Deserialize, Serialize};

/// Errors from JSON printing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    serde::from_value(value).map_err(Error::from)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

// --- printer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display for f64 is shortest-roundtrip; ensure the
                // token stays a JSON number with a decimal point.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, depth, '[', ']', items.len(), |o, i, d| {
                write_value(o, &items[i], indent, d)
            })
        }
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |o, i, d| {
                write_json_string(o, &entries[i].0);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, &entries[i].1, indent, d);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; BMP only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u codepoint"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("x \"y\" ü".into())),
            ("d".into(), Value::I64(-3)),
            ("e".into(), Value::Bool(true)),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_exact() {
        for x in [0.1, 1e300, -2.5e-7, 123456789.123456] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_errors() {
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<bool>("7").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }
}
