//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io (see
//! `vendor/README.md`). This crate keeps the workspace's property tests
//! running with the same source syntax:
//!
//! * [`Strategy`] with `prop_map`, [`any`], ranges-as-strategies, and
//!   [`array::uniform4`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest: generation is plain pseudo-random (no
//! bias toward edge cases) and failing cases do **not** shrink — the
//! failing input values are printed as-is. Each test function's RNG seed
//! is derived from its name, so failures reproduce deterministically.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Run-time configuration of a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (regenerates until `f` accepts, up to a
    /// retry bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi == <$t>::MAX {
                    // Avoid overflow in the exclusive upper bound.
                    return rng.gen_range(lo..hi).max(lo);
                }
                rng.gen_range(lo..hi + 1)
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Fixed-size-array strategies, mirroring `proptest::array`.
pub mod array {
    use super::{StdRng, Strategy};

    macro_rules! uniform_array {
        ($name:ident, $wrapper:ident, $n:expr) => {
            /// Strategy for `[S::Value; N]` drawing each element from `s`.
            pub fn $name<S: Strategy>(s: S) -> $wrapper<S> {
                $wrapper(s)
            }

            /// See the function of the same (lowercase) name.
            pub struct $wrapper<S>(S);

            impl<S: Strategy> Strategy for $wrapper<S> {
                type Value = [S::Value; $n];
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    core::array::from_fn(|_| self.0.new_value(rng))
                }
            }
        };
    }
    uniform_array!(uniform2, Uniform2, 2);
    uniform_array!(uniform3, Uniform3, 3);
    uniform_array!(uniform4, Uniform4, 4);
    uniform_array!(uniform8, Uniform8, 8);
}

/// Derives the deterministic RNG seed for a named test function.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fresh RNG for one test function.
pub fn test_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __l, __r
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property-test functions; see the crate docs for the supported
/// subset (simple `ident in strategy` bindings, optional leading
/// `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __dbg = format!(concat!($(stringify!($arg), " = {:?}  ",)+), $(&$arg),+);
                let __result: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1, __cfg.cases, __e, __dbg
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
